//! The two durable backends over the segmented journal: [`LogBackend`]
//! (ordered map, exclusive writers) and [`WriteBehind`] (sharded front,
//! concurrent writers).

use super::frames::{encode_frame, Frame};
use super::journal::{ChurnCompact, Journal};
use super::{LogKey, LogOptions, BUFFER_SPILL, MAX_COMPACTED_SEGMENTS};
use crate::backend::{ConcurrentTrustBackend, ShardedBackend, TrustBackend};
use crate::error::TrustError;
use crate::mutuality::UsageLog;
use crate::record::TrustRecord;
use crate::task::TaskId;
use std::collections::BTreeMap;
use std::fmt;
use std::hash::Hash;
use std::path::Path;
use std::sync::Mutex;

// ---------------------------------------------------------------------------
// LogBackend
// ---------------------------------------------------------------------------

/// The durable ordered-map backend: a [`BTreeBackend`]-layout in-memory map
/// mirrored into the segmented journal described in the [module
/// docs](super).
///
/// Reads are pure memory; every write appends one absolute-state frame.
/// Construction without a directory ([`Default`]/ephemeral) journals
/// nothing — which is what the backend-equivalence property tests
/// exercise. [`LogBackend::open`] makes it durable.
///
/// Cloning a file-backed `LogBackend` keeps the full in-memory state but
/// **detaches from the file**: the clone journals nowhere (two handles
/// appending to one chain would interleave corruptly). Clone is for
/// forking experiments, not for sharing a durable store.
///
/// [`BTreeBackend`]: crate::backend::BTreeBackend
#[derive(Clone)]
pub struct LogBackend<P: LogKey> {
    mem: BTreeMap<(P, TaskId), TrustRecord>,
    journal: Journal<P>,
}

impl<P: LogKey> Default for LogBackend<P> {
    fn default() -> Self {
        LogBackend { mem: BTreeMap::new(), journal: Journal::ephemeral(LogOptions::default()) }
    }
}

impl<P: LogKey> LogBackend<P> {
    /// Opens (or creates) a durable backend in `dir` with default options:
    /// replays the manifest's segment chain (truncating a torn tail frame
    /// on the active segment), migrating a version-1 directory if that is
    /// what `dir` holds.
    pub fn open(dir: impl AsRef<Path>) -> Result<Self, TrustError> {
        Self::open_with(dir, LogOptions::default())
    }

    /// [`Self::open`] with explicit [`LogOptions`].
    pub fn open_with(dir: impl AsRef<Path>, options: LogOptions) -> Result<Self, TrustError> {
        let (journal, mem) = Journal::open(dir.as_ref(), options)?;
        Ok(LogBackend { mem, journal })
    }

    /// Whether this backend persists to disk (`false` for ephemeral
    /// construction and detached clones).
    pub fn is_durable(&self) -> bool {
        self.journal.is_durable()
    }

    /// The backing directory, if durable.
    pub fn dir(&self) -> Option<&Path> {
        self.journal.dir()
    }

    /// Frames appended since the last compaction (replayed raw-segment
    /// frames count, so a freshly opened backend reports its replay
    /// backlog).
    pub fn frames_since_compaction(&self) -> u64 {
        self.journal.frames_since_compact
    }

    /// Segments in the committed chain (0 when ephemeral).
    pub fn segments(&self) -> usize {
        self.journal.segments()
    }

    /// Compacted segments leading the chain (0 when ephemeral).
    pub fn compacted_segments(&self) -> usize {
        self.journal.compacted_segments()
    }

    /// Full compaction: rewrites the complete state as one compacted
    /// segment and resets the chain to `[compacted, active]`. O(total
    /// state) — prefer [`Self::compact_churned`] unless the chain needs
    /// the full form. No-op (beyond resetting the frame counter) for
    /// ephemeral backends.
    pub fn compact(&mut self) -> Result<(), TrustError> {
        self.journal.compact_from(self.mem.iter().map(|(&(p, t), &r)| (p, t, r)))
    }

    /// Incremental compaction: folds only the frames appended since the
    /// last compaction (the chain's raw segments) into a new compacted
    /// segment — O(churn), not O(state). Falls back to the full form when
    /// the churn window holds a `clear` or the chain already carries
    /// [`MAX_COMPACTED_SEGMENTS`] incremental snapshots.
    pub fn compact_churned(&mut self) -> Result<(), TrustError> {
        if self.journal.compacted_segments() >= MAX_COMPACTED_SEGMENTS {
            return self.compact();
        }
        match self.journal.compact_churned()? {
            ChurnCompact::Done => Ok(()),
            ChurnCompact::NeedsFull => self.compact(),
        }
    }

    /// Forces buffered frames down **and** fsyncs regardless of the
    /// configured [`FsyncPolicy`](super::FsyncPolicy) — the "I need this
    /// on disk now" call.
    pub fn sync(&mut self) -> Result<(), TrustError> {
        self.journal.sync()
    }

    fn after_write(&mut self) {
        let every = self.journal.options.compact_every;
        if every > 0 && self.journal.frames_since_compact >= every {
            // auto-compaction failure is sticky; the next flush surfaces it
            if let Err(e) = self.compact_churned() {
                self.journal.fail(e.to_string());
            }
        }
    }
}

impl<P: LogKey> fmt::Debug for LogBackend<P> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("LogBackend")
            .field("records", &self.mem.len())
            .field("journal", &self.journal)
            .finish()
    }
}

impl<P: LogKey + fmt::Debug> TrustBackend<P> for LogBackend<P> {
    fn get(&self, peer: P, task: TaskId) -> Option<TrustRecord> {
        self.mem.get(&(peer, task)).copied()
    }

    fn insert(&mut self, peer: P, task: TaskId, rec: TrustRecord) {
        self.mem.insert((peer, task), rec);
        self.journal.append_record(peer, task, rec);
        self.after_write();
    }

    fn update(
        &mut self,
        peer: P,
        task: TaskId,
        f: &mut dyn FnMut(Option<TrustRecord>) -> TrustRecord,
    ) {
        let rec = match self.mem.get_mut(&(peer, task)) {
            Some(slot) => {
                *slot = f(Some(*slot));
                *slot
            }
            None => {
                let rec = f(None);
                self.mem.insert((peer, task), rec);
                rec
            }
        };
        self.journal.append_record(peer, task, rec);
        self.after_write();
    }

    fn update_batch(
        &mut self,
        items: &[(P, TaskId)],
        f: &mut dyn FnMut(usize, Option<TrustRecord>) -> TrustRecord,
    ) {
        if items.is_empty() {
            return;
        }
        // fold the whole batch, then append its frames in one shot: one
        // buffer extend and one spill check per batch instead of per record
        let mut buf = Vec::with_capacity((items.len() * 64).min(BUFFER_SPILL));
        for (i, &(peer, task)) in items.iter().enumerate() {
            let rec = match self.mem.get_mut(&(peer, task)) {
                Some(slot) => {
                    *slot = f(i, Some(*slot));
                    *slot
                }
                None => {
                    let rec = f(i, None);
                    self.mem.insert((peer, task), rec);
                    rec
                }
            };
            encode_frame(&mut buf, &Frame::PutRecord { peer, task, rec });
        }
        self.journal.append_encoded(&buf, items.len() as u64);
        self.after_write();
    }

    fn for_each_experience(&self, peer: P, f: &mut dyn FnMut(TaskId, TrustRecord)) {
        for (&(_, tid), &rec) in self.mem.range((peer, TaskId(0))..=(peer, TaskId(u32::MAX))) {
            f(tid, rec);
        }
    }

    fn known_peers(&self) -> Vec<P> {
        let mut peers: Vec<P> = self.mem.keys().map(|&(p, _)| p).collect();
        peers.dedup(); // key order keeps a peer's records adjacent
        peers
    }

    fn len(&self) -> usize {
        self.mem.len()
    }

    fn clear(&mut self) {
        self.mem.clear();
        self.journal.append(&Frame::ClearRecords);
        self.after_write();
    }

    fn note_usage_log(&mut self, peer: P, log: UsageLog) {
        self.journal.note_usage(peer, log);
        self.after_write();
    }

    fn recovered_usage_logs(&self) -> Vec<(P, UsageLog)> {
        self.journal.usage.iter().map(|(&p, &l)| (p, l)).collect()
    }

    fn flush(&mut self) -> Result<(), TrustError> {
        self.journal.flush()
    }

    fn commit_barrier(&mut self) -> Result<(), TrustError> {
        self.journal.commit_barrier()
    }
}

// ---------------------------------------------------------------------------
// WriteBehind
// ---------------------------------------------------------------------------

/// A [`ShardedBackend`] fronting the durable journal as a cache.
///
/// All reads and folds hit the sharded in-memory front — including the
/// concurrent shared-handle paths ([`ConcurrentTrustBackend`]), so an
/// [`ObserverPool`](crate::pool::ObserverPool) can drive it exactly like a
/// plain `ShardedBackend` — while every folded record is also journaled.
/// Frame appends happen under the front's per-lane lock (lane → journal
/// lock order everywhere), so the journal's per-key frame order always
/// matches fold order and replay lands on the exact final state.
///
/// Durability is **write-behind**: frames buffer until
/// [`flush`](Self::flush)/[`sync`](Self::sync) (both usable through a
/// shared `&self`, e.g. via [`TrustEngine::backend`]), a commit barrier
/// (under [`FsyncPolicy::Always`](super::FsyncPolicy::Always)), a buffer
/// spill, or drop. A consistent snapshot needs exclusive access, so
/// compaction runs via [`Self::compact`]/[`Self::compact_churned`] or the
/// `compact_every` auto-trigger on the `&mut` write paths — purely shared
/// writers compact whenever the owner regains `&mut` (the IoT
/// coordinator's `compact_ledger` is the model).
///
/// Journal appends are **batched per lane run**: the shared batch paths
/// ([`update_batch_shared`](ConcurrentTrustBackend::update_batch_shared),
/// [`update_lane_run_shared`](ConcurrentTrustBackend::update_lane_run_shared)
/// — the [`ObserverPool`](crate::pool::ObserverPool) dispatch seam) encode
/// a run's frames into a local buffer while folding and take the journal
/// mutex **once per run**, not once per record. The buffered append still
/// happens on the run's last fold, *under the front's lane lock*, so the
/// journal's per-key frame order always equals fold order even with
/// concurrent writers on overlapping keys. Only the single-record
/// [`update_shared`](ConcurrentTrustBackend::update_shared) pays the
/// per-record mutex.
///
/// [`TrustEngine::backend`]: crate::store::TrustEngine::backend
pub struct WriteBehind<P: LogKey + Hash> {
    front: ShardedBackend<P>,
    journal: Mutex<Journal<P>>,
}

impl<P: LogKey + Hash> Default for WriteBehind<P> {
    fn default() -> Self {
        WriteBehind {
            front: ShardedBackend::default(),
            journal: Mutex::new(Journal::ephemeral(LogOptions::default())),
        }
    }
}

impl<P: LogKey + Hash> WriteBehind<P> {
    fn lock(&self) -> std::sync::MutexGuard<'_, Journal<P>> {
        self.journal.lock().unwrap_or_else(|e| e.into_inner())
    }
}

/// Run-scoped frame buffer for [`WriteBehind`]'s batched write paths. On
/// the normal path the run's frames are appended in one shot — from the
/// last fold on the shared paths (under the front's lane lock). If a fold
/// closure panics mid-run, `Drop` appends whatever already folded during
/// unwinding — the front holds those records, so losing their frames
/// would make a later reopen silently revert them (the
/// replay-matches-front invariant). The unwind-path append happens after
/// the lane lock is gone, so its ordering guarantee is only best-effort —
/// acceptable for what is by definition a bug in the fold path
/// (`TrustError::WorkerPanicked`), where the batch is already documented
/// as partially folded.
///
/// Holds the journal mutex (not the whole backend) so the exclusive
/// paths could borrow it alongside `&mut front`.
struct RunFrames<'a, P: LogKey> {
    journal: &'a Mutex<Journal<P>>,
    buf: Vec<u8>,
    frames: u64,
}

impl<'a, P: LogKey> RunFrames<'a, P> {
    fn new(journal: &'a Mutex<Journal<P>>, run_len: usize) -> Self {
        RunFrames { journal, buf: Vec::with_capacity((run_len * 64).min(BUFFER_SPILL)), frames: 0 }
    }

    fn push(&mut self, peer: P, task: TaskId, rec: TrustRecord) {
        encode_frame(&mut self.buf, &Frame::PutRecord { peer, task, rec });
        self.frames += 1;
    }

    fn append_now(&mut self) {
        if !self.buf.is_empty() {
            self.journal
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .append_encoded(&self.buf, self.frames);
            self.buf.clear();
            self.frames = 0;
        }
    }
}

impl<P: LogKey> Drop for RunFrames<'_, P> {
    fn drop(&mut self) {
        self.append_now();
    }
}

impl<P: LogKey + Hash + Send + Sync + fmt::Debug> WriteBehind<P> {
    /// Folds one pre-routed lane run, journaling the whole run with **one**
    /// journal-mutex acquisition: frames are encoded into a run-local
    /// buffer as records fold, and the buffered append happens on the
    /// run's last fold — still inside the front's lane lock, so a later
    /// writer to this lane (and therefore to any of its keys) can only
    /// append *after* this run. Per-key journal order = fold order, at a
    /// per-run instead of per-record mutex cost. A panicking fold closure
    /// still journals the records that folded before it (see
    /// [`RunFrames`]).
    fn journaled_lane_run(
        &self,
        lane: usize,
        indices: &[usize],
        key_of: &dyn Fn(usize) -> (P, TaskId),
        f: &mut dyn FnMut(usize, Option<TrustRecord>) -> TrustRecord,
    ) {
        let mut run = RunFrames::new(&self.journal, indices.len());
        let mut left = indices.len();
        self.front.update_lane_run_shared(lane, indices, key_of, &mut |i, prior| {
            let rec = f(i, prior);
            let (peer, task) = key_of(i);
            run.push(peer, task, rec);
            left -= 1;
            if left == 0 {
                run.append_now();
            }
            rec
        });
    }
}

impl<P: LogKey + Hash + fmt::Debug> WriteBehind<P> {
    /// Opens (or creates) a durable write-behind backend in `dir` with the
    /// default sharded front and options.
    pub fn open(dir: impl AsRef<Path>) -> Result<Self, TrustError> {
        Self::open_with(dir, LogOptions::default(), ShardedBackend::default())
    }

    /// [`Self::open`] with explicit options and a pre-sized front (e.g.
    /// [`ShardedBackend::with_shards_for_writers`] when pairing with a
    /// pool). Recovered records are loaded into the front.
    pub fn open_with(
        dir: impl AsRef<Path>,
        options: LogOptions,
        mut front: ShardedBackend<P>,
    ) -> Result<Self, TrustError> {
        let (journal, recovered) = Journal::open(dir.as_ref(), options)?;
        for ((peer, task), rec) in recovered {
            front.insert(peer, task, rec);
        }
        Ok(WriteBehind { front, journal: Mutex::new(journal) })
    }

    /// Whether this backend persists to disk.
    pub fn is_durable(&self) -> bool {
        self.lock().is_durable()
    }

    /// Pushes buffered frames down (fsync per policy) through a shared
    /// handle and surfaces any sticky append failure.
    pub fn flush(&self) -> Result<(), TrustError> {
        self.lock().flush()
    }

    /// [`Self::flush`] with the fsync forced regardless of policy.
    pub fn sync(&self) -> Result<(), TrustError> {
        self.lock().sync()
    }

    /// Frames appended since the last compaction.
    pub fn frames_since_compaction(&self) -> u64 {
        self.lock().frames_since_compact
    }

    /// Segments in the committed chain (0 when ephemeral).
    pub fn segments(&self) -> usize {
        self.lock().segments()
    }

    /// Compacted segments leading the chain (0 when ephemeral).
    pub fn compacted_segments(&self) -> usize {
        self.lock().compacted_segments()
    }

    /// Full compaction: rewrites the complete front state as one compacted
    /// segment and resets the chain. Exclusive access guarantees the
    /// snapshot is consistent.
    pub fn compact(&mut self) -> Result<(), TrustError> {
        let mut records: Vec<(P, TaskId, TrustRecord)> = Vec::with_capacity(self.front.len());
        for peer in self.front.known_peers() {
            self.front.for_each_experience(peer, &mut |task, rec| records.push((peer, task, rec)));
        }
        self.journal.get_mut().unwrap_or_else(|e| e.into_inner()).compact_from(records.into_iter())
    }

    /// Incremental compaction — O(churn), not O(front state); falls back
    /// to [`Self::compact`] when the window holds a `clear` or the chain
    /// carries [`MAX_COMPACTED_SEGMENTS`] incremental snapshots.
    pub fn compact_churned(&mut self) -> Result<(), TrustError> {
        let journal = self.journal.get_mut().unwrap_or_else(|e| e.into_inner());
        if journal.compacted_segments() >= MAX_COMPACTED_SEGMENTS {
            return self.compact();
        }
        match journal.compact_churned()? {
            ChurnCompact::Done => Ok(()),
            ChurnCompact::NeedsFull => self.compact(),
        }
    }

    /// `compact_every` auto-trigger for the exclusive (`&mut`) write paths.
    /// The shared-handle paths cannot compact (a consistent fallback
    /// snapshot needs exclusive access), so a purely shared writer checks
    /// the threshold whenever it regains `&mut` — or compacts explicitly.
    fn after_write_mut(&mut self) {
        let journal = self.journal.get_mut().unwrap_or_else(|e| e.into_inner());
        let every = journal.options.compact_every;
        if every > 0 && journal.frames_since_compact >= every {
            if let Err(e) = self.compact_churned() {
                // sticky; the next flush/sync surfaces it
                self.journal.get_mut().unwrap_or_else(|p| p.into_inner()).fail(e.to_string());
            }
        }
    }
}

impl<P: LogKey + Hash> Clone for WriteBehind<P> {
    /// Like [`LogBackend`]: the clone keeps the front's state but detaches
    /// from the file.
    fn clone(&self) -> Self {
        WriteBehind { front: self.front.clone(), journal: Mutex::new(self.lock().clone()) }
    }
}

impl<P: LogKey + Hash + fmt::Debug> fmt::Debug for WriteBehind<P> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("WriteBehind")
            .field("front", &self.front)
            .field("journal", &*self.lock())
            .finish()
    }
}

impl<P: LogKey + Hash + fmt::Debug> TrustBackend<P> for WriteBehind<P> {
    fn get(&self, peer: P, task: TaskId) -> Option<TrustRecord> {
        self.front.get(peer, task)
    }

    fn insert(&mut self, peer: P, task: TaskId, rec: TrustRecord) {
        self.front.insert(peer, task, rec);
        self.journal.get_mut().unwrap_or_else(|e| e.into_inner()).append_record(peer, task, rec);
        self.after_write_mut();
    }

    fn update(
        &mut self,
        peer: P,
        task: TaskId,
        f: &mut dyn FnMut(Option<TrustRecord>) -> TrustRecord,
    ) {
        let journal = self.journal.get_mut().unwrap_or_else(|e| e.into_inner());
        self.front.update(peer, task, &mut |prior| {
            let rec = f(prior);
            journal.append_record(peer, task, rec);
            rec
        });
        self.after_write_mut();
    }

    fn update_batch(
        &mut self,
        items: &[(P, TaskId)],
        f: &mut dyn FnMut(usize, Option<TrustRecord>) -> TrustRecord,
    ) {
        if items.is_empty() {
            return;
        }
        // encode the whole batch locally, append once (on the guard's
        // drop): exclusive access means no concurrent writer can
        // interleave frames, so appending after the folds preserves
        // per-key journal order — and the drop-guard keeps a panicking
        // fold from losing the frames of records already in the front
        let mut run = RunFrames::new(&self.journal, items.len());
        self.front.update_batch(items, &mut |i, prior| {
            let rec = f(i, prior);
            let (peer, task) = items[i];
            run.push(peer, task, rec);
            rec
        });
        drop(run);
        self.after_write_mut();
    }

    fn for_each_experience(&self, peer: P, f: &mut dyn FnMut(TaskId, TrustRecord)) {
        self.front.for_each_experience(peer, f);
    }

    fn known_peers(&self) -> Vec<P> {
        self.front.known_peers()
    }

    fn len(&self) -> usize {
        self.front.len()
    }

    fn clear(&mut self) {
        self.front.clear();
        self.journal.get_mut().unwrap_or_else(|e| e.into_inner()).append(&Frame::ClearRecords);
        self.after_write_mut();
    }

    fn note_usage_log(&mut self, peer: P, log: UsageLog) {
        self.journal.get_mut().unwrap_or_else(|e| e.into_inner()).note_usage(peer, log);
        self.after_write_mut();
    }

    fn recovered_usage_logs(&self) -> Vec<(P, UsageLog)> {
        self.lock().usage.iter().map(|(&p, &l)| (p, l)).collect()
    }

    fn flush(&mut self) -> Result<(), TrustError> {
        WriteBehind::flush(self)
    }

    fn commit_barrier(&mut self) -> Result<(), TrustError> {
        self.journal.get_mut().unwrap_or_else(|e| e.into_inner()).commit_barrier()
    }
}

impl<P: LogKey + Hash + Send + Sync + fmt::Debug> ConcurrentTrustBackend<P> for WriteBehind<P> {
    fn get_shared(&self, peer: P, task: TaskId) -> Option<TrustRecord> {
        self.front.get_shared(peer, task)
    }

    fn update_shared(
        &self,
        peer: P,
        task: TaskId,
        f: &mut dyn FnMut(Option<TrustRecord>) -> TrustRecord,
    ) {
        // journal locked *inside* the fold (under the front's lane lock):
        // lane → journal everywhere, and per-key frame order = fold order
        self.front.update_shared(peer, task, &mut |prior| {
            let rec = f(prior);
            self.lock().append_record(peer, task, rec);
            rec
        });
    }

    fn update_batch_shared(
        &self,
        items: &[(P, TaskId)],
        f: &mut dyn FnMut(usize, Option<TrustRecord>) -> TrustRecord,
    ) {
        // route by lane here (one hash per element, like the front would)
        // so each lane's slice journals as one buffered append
        let mut runs: Vec<Vec<usize>> = vec![Vec::new(); self.front.write_lanes()];
        for (i, &(peer, _)) in items.iter().enumerate() {
            runs[self.front.lane_of(peer)].push(i);
        }
        for (lane, indices) in runs.iter().enumerate() {
            if !indices.is_empty() {
                self.journaled_lane_run(lane, indices, &|i| items[i], f);
            }
        }
    }

    fn write_lanes(&self) -> usize {
        self.front.write_lanes()
    }

    fn lane_of(&self, peer: P) -> usize {
        self.front.lane_of(peer)
    }

    fn update_lane_run_shared(
        &self,
        lane: usize,
        indices: &[usize],
        key_of: &dyn Fn(usize) -> (P, TaskId),
        f: &mut dyn FnMut(usize, Option<TrustRecord>) -> TrustRecord,
    ) {
        self.journaled_lane_run(lane, indices, key_of, f);
    }

    fn commit_barrier_shared(&self) -> Result<(), TrustError> {
        self.lock().commit_barrier()
    }
}

#[cfg(test)]
mod tests {
    use super::super::frames::{read_frame, FrameRead};
    use super::super::{FsyncPolicy, MANIFEST_FILE};
    use super::*;
    use std::fs;
    use std::path::PathBuf;

    fn rec(s: f64) -> TrustRecord {
        TrustRecord::with_priors(s, 0.5, 0.25, 0.125)
    }

    fn tmpdir(tag: &str) -> PathBuf {
        use std::sync::atomic::{AtomicU64, Ordering};
        static NEXT: AtomicU64 = AtomicU64::new(0);
        let dir = std::env::temp_dir().join(format!(
            "siot-log-{tag}-{}-{}",
            std::process::id(),
            NEXT.fetch_add(1, Ordering::Relaxed)
        ));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn frames_round_trip() {
        let mut buf = Vec::new();
        let frames: Vec<Frame<u32>> = vec![
            Frame::PutRecord { peer: 7, task: TaskId(3), rec: rec(0.75) },
            Frame::PutUsage { peer: 9, log: UsageLog { responsive: 4, abusive: 1 } },
            Frame::ClearRecords,
        ];
        for f in &frames {
            encode_frame(&mut buf, f);
        }
        let mut off = 0;
        let mut seen = 0;
        loop {
            match read_frame::<u32>(&buf, off) {
                FrameRead::End => break,
                FrameRead::Frame(frame, next) => {
                    match (seen, frame) {
                        (0, Frame::PutRecord { peer, task, rec: r }) => {
                            assert_eq!((peer, task), (7, TaskId(3)));
                            assert_eq!(r, rec(0.75));
                        }
                        (1, Frame::PutUsage { peer, log }) => {
                            assert_eq!(peer, 9);
                            assert_eq!(log, UsageLog { responsive: 4, abusive: 1 });
                        }
                        (2, Frame::ClearRecords) => {}
                        _ => panic!("unexpected frame #{seen}"),
                    }
                    seen += 1;
                    off = next;
                }
                FrameRead::Invalid => panic!("clean buffer must replay"),
            }
        }
        assert_eq!(seen, 3);
    }

    #[test]
    fn ephemeral_backend_matches_contract() {
        // same exercise the other backends run in backend.rs
        let mut b = LogBackend::<u32>::default();
        assert!(b.is_empty());
        assert!(!b.is_durable());
        b.insert(7, TaskId(1), rec(0.5));
        b.insert(3, TaskId(0), rec(0.25));
        b.insert(7, TaskId(0), rec(0.75));
        assert_eq!(b.len(), 3);
        b.update(7, TaskId(1), &mut |prior| {
            let mut r = prior.expect("existing");
            r.s_hat = 0.9;
            r
        });
        assert_eq!(b.get(7, TaskId(1)).unwrap().s_hat, 0.9);
        let mut seen = Vec::new();
        b.for_each_experience(7, &mut |tid, r| seen.push((tid, r.s_hat)));
        assert_eq!(seen, vec![(TaskId(0), 0.75), (TaskId(1), 0.9)]);
        assert_eq!(b.known_peers(), vec![3, 7]);
        b.clear();
        assert!(b.is_empty());
        assert!(b.flush().is_ok());
        assert!(b.commit_barrier().is_ok());
    }

    #[test]
    fn reopen_recovers_records_and_usage() {
        let dir = tmpdir("reopen");
        {
            let mut b = LogBackend::<u32>::open(&dir).unwrap();
            assert!(b.is_durable());
            assert_eq!(b.dir(), Some(dir.as_path()));
            assert!(dir.join(MANIFEST_FILE).exists());
            b.insert(1, TaskId(0), rec(0.5));
            b.update(1, TaskId(0), &mut |p| {
                let mut r = p.unwrap();
                r.interactions += 1;
                r
            });
            b.insert(2, TaskId(3), rec(1.0));
            b.note_usage_log(2, UsageLog { responsive: 5, abusive: 2 });
            // dropped without flush: the journal flushes on drop
        }
        let b = LogBackend::<u32>::open(&dir).unwrap();
        assert_eq!(b.len(), 2);
        assert_eq!(b.get(1, TaskId(0)).unwrap().interactions, 1);
        assert_eq!(b.get(2, TaskId(3)).unwrap(), rec(1.0));
        assert_eq!(b.recovered_usage_logs(), vec![(2, UsageLog { responsive: 5, abusive: 2 })]);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn batch_writes_recover_exactly() {
        let dir = tmpdir("batch");
        {
            let mut b = LogBackend::<u32>::open(&dir).unwrap();
            let items: Vec<(u32, TaskId)> = (0..64u32).map(|p| (p, TaskId(0))).collect();
            b.update_batch(&items, &mut |i, _| rec(i as f64 / 64.0));
        }
        let b = LogBackend::<u32>::open(&dir).unwrap();
        assert_eq!(b.len(), 64);
        for i in 0..64u32 {
            assert_eq!(b.get(i, TaskId(0)), Some(rec(f64::from(i) / 64.0)), "peer {i}");
        }
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn rotation_seals_segments_and_reopen_replays_the_chain() {
        let dir = tmpdir("rotate");
        let opts = LogOptions { segment_bytes: 512, ..LogOptions::default() };
        {
            let mut b = LogBackend::<u32>::open_with(&dir, opts).unwrap();
            for i in 0..200u32 {
                b.insert(i, TaskId(0), rec(f64::from(i) / 200.0));
            }
            b.flush().unwrap();
            assert!(b.segments() > 2, "512-byte segments must rotate, got {}", b.segments());
        }
        let b = LogBackend::<u32>::open_with(&dir, opts).unwrap();
        assert_eq!(b.len(), 200);
        for i in (0..200u32).step_by(17) {
            assert_eq!(b.get(i, TaskId(0)), Some(rec(f64::from(i) / 200.0)), "peer {i}");
        }
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn compaction_truncates_chain_and_survives_reopen() {
        let dir = tmpdir("compact");
        {
            let mut b = LogBackend::<u32>::open(&dir).unwrap();
            for i in 0..50u32 {
                b.insert(i, TaskId(0), rec(0.5));
            }
            b.note_usage_log(3, UsageLog { responsive: 1, abusive: 0 });
            assert!(b.frames_since_compaction() >= 51);
            b.compact().unwrap();
            assert_eq!(b.frames_since_compaction(), 0);
            assert_eq!(b.segments(), 2, "full compaction resets to [compacted, active]");
            b.insert(99, TaskId(1), rec(0.25)); // post-snapshot tail frame
        }
        let b = LogBackend::<u32>::open(&dir).unwrap();
        assert_eq!(b.len(), 51);
        assert_eq!(b.frames_since_compaction(), 1, "only the tail frame is raw");
        assert_eq!(b.get(99, TaskId(1)).unwrap(), rec(0.25));
        assert_eq!(b.recovered_usage_logs().len(), 1);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn churned_compaction_folds_only_raw_segments() {
        let dir = tmpdir("churn");
        {
            let mut b = LogBackend::<u32>::open(&dir).unwrap();
            for i in 0..100u32 {
                b.insert(i, TaskId(0), rec(0.5));
            }
            // chain: [compacted, active]
            b.compact().unwrap();
            // churn a handful of keys, then compact just the churn
            for i in 0..5u32 {
                b.insert(i, TaskId(0), rec(0.875));
            }
            b.compact_churned().unwrap();
            assert_eq!(b.compacted_segments(), 2, "the churn snapshot appends to the chain");
            assert_eq!(b.frames_since_compaction(), 0);
            b.insert(7, TaskId(1), rec(0.25));
        }
        let b = LogBackend::<u32>::open(&dir).unwrap();
        assert_eq!(b.len(), 101);
        for i in 0..5u32 {
            assert_eq!(b.get(i, TaskId(0)), Some(rec(0.875)), "churned peer {i} wins on replay");
        }
        assert_eq!(b.get(50, TaskId(0)), Some(rec(0.5)), "unchurned state intact");
        assert_eq!(b.get(7, TaskId(1)), Some(rec(0.25)));
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn clear_in_churn_window_falls_back_to_full_compaction() {
        let dir = tmpdir("churn-clear");
        let mut b = LogBackend::<u32>::open(&dir).unwrap();
        for i in 0..20u32 {
            b.insert(i, TaskId(0), rec(0.5));
        }
        b.compact().unwrap();
        b.clear();
        b.insert(1, TaskId(0), rec(0.75));
        // an appended snapshot cannot express the clear: must go full
        b.compact_churned().unwrap();
        assert_eq!(b.compacted_segments(), 1, "clear forces the chain-resetting full form");
        drop(b);
        let b = LogBackend::<u32>::open(&dir).unwrap();
        assert_eq!(b.len(), 1, "cleared records stay cleared after reopen");
        assert_eq!(b.get(1, TaskId(0)), Some(rec(0.75)));
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn chain_of_incremental_snapshots_folds_into_full_at_cap() {
        let dir = tmpdir("churn-cap");
        let mut b = LogBackend::<u32>::open(&dir).unwrap();
        for round in 0..=MAX_COMPACTED_SEGMENTS as u32 {
            b.insert(round, TaskId(0), rec(0.5));
            b.compact_churned().unwrap();
            assert!(b.compacted_segments() <= MAX_COMPACTED_SEGMENTS);
        }
        assert_eq!(b.compacted_segments(), 1, "hitting the cap folds the chain into one");
        drop(b);
        let b = LogBackend::<u32>::open(&dir).unwrap();
        assert_eq!(b.len(), MAX_COMPACTED_SEGMENTS + 1);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn auto_compaction_fires_on_threshold() {
        let dir = tmpdir("autocompact");
        let opts = LogOptions { compact_every: 16, ..LogOptions::default() };
        let mut b = LogBackend::<u32>::open_with(&dir, opts).unwrap();
        for i in 0..40u32 {
            b.insert(i, TaskId(0), rec(0.5));
        }
        assert!(b.frames_since_compaction() < 16, "threshold keeps the raw chain short");
        assert!(b.compacted_segments() >= 1, "the trigger wrote a compacted segment");
        drop(b);
        let b = LogBackend::<u32>::open(&dir).unwrap();
        assert_eq!(b.len(), 40);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn clone_detaches_from_the_file() {
        let dir = tmpdir("clone");
        let mut a = LogBackend::<u32>::open(&dir).unwrap();
        a.insert(1, TaskId(0), rec(0.5));
        let mut c = a.clone();
        assert!(!c.is_durable());
        c.insert(2, TaskId(0), rec(0.75)); // journals nowhere
        assert_eq!(c.len(), 2);
        drop(a);
        let reopened = LogBackend::<u32>::open(&dir).unwrap();
        assert_eq!(reopened.len(), 1, "the clone's writes never reach the file");
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn fsync_policies_all_reach_disk() {
        for policy in [FsyncPolicy::Never, FsyncPolicy::OnFlush, FsyncPolicy::Always] {
            let dir = tmpdir("fsync");
            let opts = LogOptions { fsync: policy, ..LogOptions::default() };
            let mut b = LogBackend::<u32>::open_with(&dir, opts).unwrap();
            b.insert(1, TaskId(0), rec(0.5));
            b.flush().unwrap();
            drop(b);
            let b = LogBackend::<u32>::open(&dir).unwrap();
            assert_eq!(b.len(), 1, "policy {policy:?}");
            fs::remove_dir_all(&dir).unwrap();
        }
    }

    #[test]
    fn write_behind_journals_all_write_paths() {
        let dir = tmpdir("wb");
        {
            let mut wb = WriteBehind::<u32>::open(&dir).unwrap();
            wb.insert(1, TaskId(0), rec(0.5));
            wb.update(1, TaskId(0), &mut |p| {
                let mut r = p.unwrap();
                r.interactions += 1;
                r
            });
            wb.update_batch(&[(2, TaskId(0)), (3, TaskId(1))], &mut |_, _| rec(0.25));
            wb.update_shared(4, TaskId(2), &mut |_| rec(0.75));
            wb.update_batch_shared(&[(5, TaskId(0))], &mut |_, _| rec(1.0));
            let indices = [0usize];
            let items = [(6u32, TaskId(1))];
            let lane = wb.lane_of(6);
            wb.update_lane_run_shared(lane, &indices, &|i| items[i], &mut |_, _| rec(0.0));
            wb.note_usage_log(1, UsageLog { responsive: 2, abusive: 0 });
            wb.flush().unwrap();
        }
        let wb = WriteBehind::<u32>::open(&dir).unwrap();
        assert_eq!(wb.len(), 6);
        assert_eq!(wb.get(1, TaskId(0)).unwrap().interactions, 1);
        assert_eq!(wb.get(4, TaskId(2)).unwrap(), rec(0.75));
        assert_eq!(wb.get(6, TaskId(1)).unwrap(), rec(0.0));
        assert_eq!(wb.recovered_usage_logs(), vec![(1, UsageLog { responsive: 2, abusive: 0 })]);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn write_behind_concurrent_writers_recover_exactly() {
        let dir = tmpdir("wb-threads");
        {
            let wb = WriteBehind::<u32>::open(&dir).unwrap();
            std::thread::scope(|scope| {
                for t in 0..4u32 {
                    let b = &wb;
                    scope.spawn(move || {
                        for i in 0..250u32 {
                            b.update_shared(t * 1000 + i, TaskId(0), &mut |_| rec(0.5));
                        }
                    });
                }
            });
            assert_eq!(wb.len(), 1000);
            wb.sync().unwrap();
        }
        let wb = WriteBehind::<u32>::open(&dir).unwrap();
        assert_eq!(wb.len(), 1000);
        assert_eq!(wb.known_peers().len(), 1000);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn write_behind_batched_shared_folds_recover_final_state() {
        // Overlapping keys hammered by concurrent *batched* folds: the
        // per-lane-run buffered journal appends must still produce a log
        // whose per-key frame order matches fold order, so replay lands on
        // exactly the front's final state (a regression here would show up
        // as a reopened record older than the in-memory one).
        let dir = tmpdir("wb-lane-batch");
        let expected: Vec<(u32, TrustRecord)>;
        {
            let wb = WriteBehind::<u32>::open(&dir).unwrap();
            std::thread::scope(|scope| {
                for t in 0..4u64 {
                    let b = &wb;
                    scope.spawn(move || {
                        let items: Vec<(u32, TaskId)> =
                            (0..32u32).map(|p| (p, TaskId(0))).collect();
                        for round in 0..50u64 {
                            b.update_batch_shared(&items, &mut |i, prior| match prior {
                                Some(mut r) => {
                                    r.interactions += 1;
                                    // thread- and round-dependent payload so
                                    // a stale frame is detectable bit-wise
                                    r.s_hat = ((t * 50 + round) as f64 + i as f64 / 32.0) / 256.0;
                                    r
                                }
                                None => rec(0.5),
                            });
                        }
                    });
                }
            });
            expected = (0..32u32).map(|p| (p, wb.get(p, TaskId(0)).expect("folded"))).collect();
            wb.flush().unwrap();
        }
        let reopened = WriteBehind::<u32>::open(&dir).unwrap();
        assert_eq!(reopened.len(), 32);
        for &(p, rec) in &expected {
            assert_eq!(reopened.get(p, TaskId(0)), Some(rec), "peer {p}");
        }
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn panicking_fold_mid_run_still_journals_earlier_folds() {
        // A fold closure that panics mid-run (TrustError::WorkerPanicked
        // territory) must not leave records that *did* fold — and are in
        // the front — without journal frames, or reopen would silently
        // revert them.
        let dir = tmpdir("wb-panic");
        {
            let wb = WriteBehind::<u32>::open(&dir).unwrap();
            // three peers sharing one lane, so they form a single run
            let lane = wb.lane_of(0);
            let peers: Vec<u32> = (0..1000u32).filter(|&p| wb.lane_of(p) == lane).take(3).collect();
            assert_eq!(peers.len(), 3);
            let items: Vec<(u32, TaskId)> = peers.iter().map(|&p| (p, TaskId(0))).collect();
            let unwound = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                wb.update_lane_run_shared(lane, &[0, 1, 2], &|i| items[i], &mut |i, _| {
                    if i == 2 {
                        panic!("injected fold bug");
                    }
                    rec(0.25)
                });
            }));
            assert!(unwound.is_err());
            // the front holds exactly the two completed folds…
            assert_eq!(wb.len(), 2);
            wb.flush().unwrap();
        }
        // …and so does the reopened journal: replay matches the front
        let reopened = WriteBehind::<u32>::open(&dir).unwrap();
        assert_eq!(reopened.len(), 2);
        let lane = reopened.lane_of(0);
        let peers: Vec<u32> =
            (0..1000u32).filter(|&p| reopened.lane_of(p) == lane).take(3).collect();
        assert_eq!(reopened.get(peers[0], TaskId(0)), Some(rec(0.25)));
        assert_eq!(reopened.get(peers[1], TaskId(0)), Some(rec(0.25)));
        assert_eq!(reopened.get(peers[2], TaskId(0)), None, "the panicking fold stored nothing");
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn panicking_fold_mid_exclusive_batch_still_journals_earlier_folds() {
        // same invariant as the shared-path test, for `&mut update_batch`:
        // whatever the front holds after the unwind must replay on reopen
        let dir = tmpdir("wb-panic-mut");
        let items: Vec<(u32, TaskId)> = (0..4u32).map(|p| (p, TaskId(0))).collect();
        let front_state: Vec<Option<TrustRecord>>;
        {
            let mut wb = WriteBehind::<u32>::open(&dir).unwrap();
            let unwound = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                wb.update_batch(&items, &mut |i, _| {
                    if i == 3 {
                        panic!("injected fold bug");
                    }
                    rec(0.5)
                });
            }));
            assert!(unwound.is_err());
            front_state = items.iter().map(|&(p, t)| wb.get(p, t)).collect();
            assert!(front_state.iter().flatten().count() >= 1, "some records folded");
            wb.flush().unwrap();
        }
        let reopened = WriteBehind::<u32>::open(&dir).unwrap();
        for (&(p, t), expected) in items.iter().zip(&front_state) {
            assert_eq!(reopened.get(p, t), *expected, "peer {p}");
        }
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn write_behind_compaction_consistent() {
        let dir = tmpdir("wb-compact");
        {
            let mut wb = WriteBehind::<u32>::open(&dir).unwrap();
            for i in 0..100u32 {
                wb.update(i, TaskId(0), &mut |_| rec(0.5));
            }
            wb.compact().unwrap();
            wb.update(200, TaskId(0), &mut |_| rec(0.25));
        }
        let wb = WriteBehind::<u32>::open(&dir).unwrap();
        assert_eq!(wb.len(), 101);
        assert_eq!(wb.get(200, TaskId(0)).unwrap(), rec(0.25));
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn write_behind_churned_compaction_consistent() {
        let dir = tmpdir("wb-churn");
        {
            let mut wb = WriteBehind::<u32>::open(&dir).unwrap();
            for i in 0..100u32 {
                wb.update(i, TaskId(0), &mut |_| rec(0.5));
            }
            wb.compact().unwrap();
            for i in 0..4u32 {
                wb.update(i, TaskId(0), &mut |_| rec(0.875));
            }
            wb.compact_churned().unwrap();
            assert_eq!(wb.compacted_segments(), 2);
        }
        let wb = WriteBehind::<u32>::open(&dir).unwrap();
        assert_eq!(wb.len(), 100);
        assert_eq!(wb.get(0, TaskId(0)).unwrap(), rec(0.875));
        assert_eq!(wb.get(50, TaskId(0)).unwrap(), rec(0.5));
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn shared_barrier_makes_concurrent_writes_durable() {
        let dir = tmpdir("wb-barrier");
        let opts = LogOptions { fsync: FsyncPolicy::Always, ..LogOptions::default() };
        {
            let wb = WriteBehind::<u32>::open_with(&dir, opts, ShardedBackend::default()).unwrap();
            for i in 0..50u32 {
                wb.update_shared(i, TaskId(0), &mut |_| rec(0.5));
            }
            wb.commit_barrier_shared().unwrap();
            // the barrier synced: no flush, no clean drop needed
            std::mem::forget(wb);
        }
        let wb = WriteBehind::<u32>::open(&dir).unwrap();
        assert_eq!(wb.len(), 50, "everything before the barrier is durable");
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn wrong_magic_is_corrupt_not_clobbered() {
        let dir = tmpdir("magic");
        fs::create_dir_all(&dir).unwrap();
        fs::write(dir.join(super::super::LOG_FILE), b"NOTSIOTFILE!").unwrap();
        let err = LogBackend::<u32>::open(&dir).unwrap_err();
        assert!(matches!(err, TrustError::Corrupt { what: "log header", .. }));
        // the foreign file is untouched
        assert_eq!(fs::read(dir.join(super::super::LOG_FILE)).unwrap(), b"NOTSIOTFILE!");
        fs::remove_dir_all(&dir).unwrap();
    }
}
