//! Durable trust state: a **segmented** append-only record log with
//! manifest-tracked chains, incremental snapshot compaction, and
//! group-commit fsync.
//!
//! Every backend before this one was in-memory, so a process restart erased
//! exactly the history the paper's trust process depends on: the
//! direct-experience records Eq. 4 inference draws from, the §4.1 mutuality
//! usage logs, and the environment-corrected expectations of §4.5. This
//! module makes that state survive — and keeps both the write path and the
//! compaction path affordable at millions of records:
//!
//! * [`LogBackend`] — a [`TrustBackend`](crate::backend::TrustBackend) whose
//!   in-memory ordered map (the
//!   same layout as [`BTreeBackend`](crate::backend::BTreeBackend), so it is
//!   bit-identical to it by construction) is mirrored into the segmented
//!   frame log. Reopening replays the segment chain and recovers the exact
//!   pre-crash state.
//! * [`WriteBehind`] — a [`ShardedBackend`](crate::backend::ShardedBackend)
//!   fronting the same journal as a
//!   cache: reads and folds hit the sharded map (including the concurrent
//!   shared-handle paths the [`ObserverPool`](crate::pool::ObserverPool)
//!   drives), while every folded record is journaled behind the front.
//!
//! ## On-disk format (version 2)
//!
//! A backend directory holds one **manifest** and a chain of bounded
//! **segments**:
//!
//! ```text
//! trust.manifest   8-byte header + one checksummed frame: the segment chain
//! seg-00000001.log 8-byte header, then length-prefixed checksummed frames
//! seg-00000002.log …
//! ```
//!
//! Headers: `"SIOT"`, a kind byte (`'M'` manifest / `'G'` segment), the
//! format version byte, two zero bytes. A version mismatch fails open with
//! [`TrustError::UnsupportedFormat`](crate::error::TrustError::UnsupportedFormat)
//! — the format is pinned by a golden-file
//! test, so readers never silently misparse old state. Version-1
//! directories (`trust.log` + `trust.snap`) are still read: they are
//! replayed with the v1 rules and migrated to a segment chain on open.
//!
//! The manifest lists the chain in replay order: zero or more **compacted**
//! segments (snapshot state, strictly valid end to end) followed by one or
//! more **raw** segments (live appends). The last raw segment is the
//! **active** one — the only file ever appended to, and the only one where
//! a torn tail frame is tolerated on recovery. Segment sequence numbers are
//! `u64` and never reused, so a stale file can never masquerade as current
//! state (the v1 format tracked compactions with a wrapping `u16`
//! generation, which could collide after 65 536 compactions; the manifest
//! replaces that scheme outright).
//!
//! Frame: `len: u32 LE | crc32: u32 LE | payload`, CRC-32 (IEEE) over the
//! payload — the shared [`framing`](crate::framing) codec, the same frame
//! shape [`service::remote`](crate::service::remote) speaks over TCP.
//! Payloads carry **absolute** state — the post-fold record, the
//! post-append usage log — never deltas, so replaying a frame twice is
//! harmless and double-counting on recovery is unrepresentable.
//!
//! | kind byte | payload |
//! |---|---|
//! | `1` record | peer `u64`, task `u32`, `Ŝ Ĝ D̂ Ĉ` as `f64` bits, interactions `u64` |
//! | `2` usage log | peer `u64`, responsive `u64`, abusive `u64` |
//! | `3` clear | (records dropped, usage logs kept — mirrors [`TrustBackend::clear`](crate::backend::TrustBackend::clear)) |
//!
//! ## Crash recovery
//!
//! A crash can tear at most the frame being appended to the active
//! segment, so recovery accepts the **longest checksum-valid prefix**
//! there: an incomplete or checksum-failing frame at the active tail is
//! truncated away silently. Everywhere else — sealed raw segments,
//! compacted segments, the manifest — every byte must verify: rotation and
//! compaction fsync the files *and the directory* before the manifest swap
//! commits the new chain, so damage in a non-active file cannot be a torn
//! append and surfaces as
//! [`TrustError::Corrupt`](crate::error::TrustError::Corrupt). Chain changes are
//! always made durable regardless of [`FsyncPolicy`] (they are rare —
//! every few megabytes — and recovery's torn-vs-corrupt distinction
//! depends on them); the policy governs the per-append data path.
//!
//! ## Compaction tracks churn, not state size
//!
//! Rewriting the full state image per compaction is O(total state) — fatal
//! with millions of records and a trickle of updates.
//! [`LogBackend::compact_churned`] instead replays only the chain's raw
//! segments (the frames appended since the last compaction), folds them
//! into one new compacted segment appended to the chain, and deletes the
//! raw segments it superseded: cost is proportional to **churn**. A full
//! rewrite ([`LogBackend::compact`]) still runs when the chain accumulates
//! [`MAX_COMPACTED_SEGMENTS`] incremental snapshots or a `clear` frame
//! makes the incremental form ambiguous; the `compact_every` auto-trigger
//! picks whichever applies.
//!
//! ## Group commit: acked means durable
//!
//! Under [`FsyncPolicy::Always`] the journal no longer fsyncs per appended
//! frame. Instead, write paths buffer and the **commit barrier**
//! ([`TrustBackend::commit_barrier`](crate::backend::TrustBackend::commit_barrier))
//! drains the buffer and issues one
//! `sync_all` covering everything appended since the last barrier. Every
//! engine-level write API runs a barrier before returning, so the
//! per-operation durability contract is unchanged — but a batch (a
//! [`TrustService`](crate::service::TrustService) drain, a
//! `commit_batch`, an `observe_batch`) shares **one** fsync across all its
//! frames, and the service actor acks per-caller receipts only after that
//! covering fsync returns. Under `Never`/`OnFlush` the barrier is a no-op
//! and the v1 semantics (fsync on flush/spill/drop) are preserved.
//!
//! ## Durability knobs
//!
//! [`LogOptions`] controls the [`FsyncPolicy`], `compact_every`
//! (auto-compaction after that many frames) and `segment_bytes` (rotation
//! threshold). Appends buffer in memory and spill to the OS at a fixed
//! threshold, on [`flush`](crate::backend::TrustBackend::flush), at barriers, on rotation
//! and compaction, and on drop — dropping an engine without an explicit
//! flush still persists every committed session. I/O failures on the
//! append path are sticky and surface at the next `flush`/`sync`.
//! `SIOT_FSYNC=always|onflush|never` overrides the default policy
//! process-wide (the CI knob that forces the durable ack path).

mod backends;
mod frames;
mod journal;
mod manifest;
mod segment;

pub use backends::{LogBackend, WriteBehind};

/// The on-disk format version this build writes (and reads natively).
pub const FORMAT_VERSION: u8 = 2;
/// The version-1 single-file format, still read and migrated on open.
pub const LEGACY_FORMAT_VERSION: u8 = 1;

/// Manifest file name inside the backend directory.
pub const MANIFEST_FILE: &str = "trust.manifest";
pub(crate) const MANIFEST_TMP: &str = "trust.manifest.tmp";

/// Version-1 log file name (read for migration; never written).
pub const LOG_FILE: &str = "trust.log";
/// Version-1 snapshot file name (read for migration; never written).
pub const SNAP_FILE: &str = "trust.snap";
pub(crate) const SNAP_TMP: &str = "trust.snap.tmp";

/// The file name of segment `seq` inside the backend directory.
pub fn segment_file_name(seq: u64) -> String {
    format!("seg-{seq:08}.log")
}

pub(crate) const HEADER_LEN: usize = 8;
pub(crate) const KIND_SEGMENT: u8 = b'G';
pub(crate) const KIND_MANIFEST: u8 = b'M';
pub(crate) const KIND_LEGACY_LOG: u8 = b'L';
pub(crate) const KIND_LEGACY_SNAP: u8 = b'S';

/// Frames are tens of bytes; anything claiming more than this is garbage,
/// rejected before the length can drive a huge allocation.
pub(crate) const MAX_FRAME_LEN: u32 = 1 << 16;

/// Buffered frame bytes spill to the OS past this size even without an
/// explicit flush, bounding the window a crash can lose under
/// [`FsyncPolicy::OnFlush`].
pub(crate) const BUFFER_SPILL: usize = 256 * 1024;

/// Incremental compactions append a compacted segment each; past this many
/// the chain is folded into one full snapshot instead (bounds both open
/// cost and directory clutter).
pub const MAX_COMPACTED_SEGMENTS: usize = 8;

// ---------------------------------------------------------------------------
// Key serialization
// ---------------------------------------------------------------------------

/// Peer keys a durable backend can serialize: a lossless round trip through
/// `u64`. Implemented for the unsigned integers here; newtype ids (e.g. the
/// IoT crate's `DeviceId`) implement it over their inner integer.
pub trait LogKey: Copy + Ord {
    /// The key as its on-disk `u64` representation.
    fn to_log_u64(self) -> u64;
    /// Rebuilds the key from its on-disk representation. Only ever called
    /// with values a [`Self::to_log_u64`] of the same type produced (frames
    /// are checksummed), so truncating conversions are unreachable in
    /// practice.
    fn from_log_u64(raw: u64) -> Self;
}

macro_rules! impl_log_key {
    ($($t:ty),*) => {$(
        impl LogKey for $t {
            fn to_log_u64(self) -> u64 {
                self as u64
            }
            fn from_log_u64(raw: u64) -> Self {
                raw as $t
            }
        }
    )*};
}
impl_log_key!(u8, u16, u32, u64);

// ---------------------------------------------------------------------------
// Options
// ---------------------------------------------------------------------------

/// When the journal calls `fsync` on the active segment.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FsyncPolicy {
    /// Never fsync the data path — buffered writes still reach the OS, so
    /// state survives a process crash, but a host crash may lose the tail.
    /// Fastest; right for benches and recomputable state. (Chain-structure
    /// changes — rotation, compaction, the manifest — are still fsynced:
    /// recovery depends on them.)
    Never,
    /// Fsync whenever buffered frames are pushed down: explicit
    /// [`flush`](crate::backend::TrustBackend::flush)/[`sync`](LogBackend::sync) calls,
    /// buffer spills, compaction, and drop. The default.
    OnFlush,
    /// Fsync before any write operation is acknowledged — via the **group
    /// commit barrier**: one `sync_all` covers every frame a batch
    /// appended, issued before the batch's receipts are released. Maximum
    /// durability at an amortized (per batch, not per frame) syscall cost.
    Always,
}

impl Default for FsyncPolicy {
    /// [`FsyncPolicy::OnFlush`], unless the `SIOT_FSYNC` environment
    /// variable (`always` / `onflush` / `never`, read once per process)
    /// overrides it — the knob CI uses to force the durable ack path
    /// through the whole test suite.
    fn default() -> Self {
        static ENV: std::sync::OnceLock<FsyncPolicy> = std::sync::OnceLock::new();
        *ENV.get_or_init(|| match std::env::var("SIOT_FSYNC") {
            Ok(v) if v.eq_ignore_ascii_case("always") => FsyncPolicy::Always,
            Ok(v) if v.eq_ignore_ascii_case("never") => FsyncPolicy::Never,
            _ => FsyncPolicy::OnFlush,
        })
    }
}

/// Construction knobs for a durable backend.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LogOptions {
    /// When `fsync` runs (default [`FsyncPolicy::OnFlush`], overridable
    /// process-wide via `SIOT_FSYNC`).
    pub fsync: FsyncPolicy,
    /// Auto-compact once this many frames accumulate since the last
    /// compaction; `0` (the default) means compaction only happens through
    /// explicit [`LogBackend::compact`]/[`LogBackend::compact_churned`]
    /// calls. The trigger prefers the churn-proportional incremental form.
    pub compact_every: u64,
    /// Rotate the active segment once it reaches this many bytes (default
    /// [`DEFAULT_SEGMENT_BYTES`]). Bounded segments are what keep
    /// incremental compaction and recovery costs proportional to churn.
    pub segment_bytes: u64,
}

/// Default rotation threshold for the active segment (4 MiB).
pub const DEFAULT_SEGMENT_BYTES: u64 = 4 * 1024 * 1024;

impl Default for LogOptions {
    fn default() -> Self {
        LogOptions {
            fsync: FsyncPolicy::default(),
            compact_every: 0,
            segment_bytes: DEFAULT_SEGMENT_BYTES,
        }
    }
}
