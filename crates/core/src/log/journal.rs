//! The journal: the shared durable sink under [`LogBackend`] and
//! [`WriteBehind`] — segment chain bookkeeping, rotation, group-commit
//! barriers, compaction (full and churn-proportional), and recovery
//! including the migration of version-1 directories.
//!
//! [`LogBackend`]: super::LogBackend
//! [`WriteBehind`]: super::WriteBehind

use super::frames::{encode_frame, read_frame, Frame, FrameRead, RecordMap, Replayed};
use super::manifest::{read_manifest, write_manifest, Manifest, SegmentEntry, SegmentKind};
use super::segment::{check_header, create_segment, replay_strict, replay_tail, sync_dir};
use super::{
    segment_file_name, FsyncPolicy, LogKey, LogOptions, BUFFER_SPILL, HEADER_LEN, KIND_LEGACY_LOG,
    KIND_LEGACY_SNAP, KIND_SEGMENT, LEGACY_FORMAT_VERSION, LOG_FILE, MANIFEST_FILE, MANIFEST_TMP,
    SNAP_FILE, SNAP_TMP,
};
use crate::error::TrustError;
use crate::mutuality::UsageLog;
use crate::record::TrustRecord;
use crate::task::TaskId;
use std::collections::BTreeMap;
use std::fmt;
use std::fs::{self, File, OpenOptions};
use std::io::{Seek, SeekFrom};
use std::path::{Path, PathBuf};

/// The file-backed half of a [`Sink`]: the active segment's handle plus
/// the chain the manifest last committed.
pub(super) struct FileSink {
    /// Open handle on the active (last) segment, positioned at its end.
    file: File,
    pub(super) dir: PathBuf,
    /// Frames buffered ahead of the OS.
    buf: Vec<u8>,
    /// Bytes of the active segment already written to the OS (header
    /// included) — the rotation trigger and the churn-window bound.
    active_bytes: u64,
    /// The durably committed chain.
    manifest: Manifest,
}

pub(super) enum Sink {
    /// Ephemeral: frames are dropped as they are appended. The mode of
    /// [`Default`] construction and of clones detached from their file.
    Null,
    /// File-backed: frames buffer in `buf` and spill to the active segment.
    File(FileSink),
}

/// What an incremental compaction attempt concluded.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(super) enum ChurnCompact {
    /// The churn window was folded into a new compacted segment.
    Done,
    /// The window contains a `clear` frame (or the chain shape rules the
    /// incremental form out) — the caller must run a full compaction,
    /// which has the complete state the incremental form lacks.
    NeedsFull,
}

pub(super) struct Journal<P: LogKey> {
    pub(super) sink: Sink,
    /// Authoritative post-append usage logs (what the engine recovers).
    pub(super) usage: BTreeMap<P, UsageLog>,
    pub(super) options: LogOptions,
    pub(super) frames_since_compact: u64,
    /// Whether frames were appended since the last fsync-carrying drain —
    /// lets a commit barrier with nothing new skip the fsync entirely, so
    /// stacked barriers (engine-level + service-level) cost one syscall.
    dirty: bool,
    /// Last I/O failure on the spill/rotation path, surfaced (exactly
    /// once) at the next flush/sync. Frames keep buffering after a failure
    /// — the buffer drains incrementally on the next successful flush, so
    /// nothing is lost or written twice.
    pub(super) failed: Option<String>,
}

impl<P: LogKey> Journal<P> {
    pub(super) fn ephemeral(options: LogOptions) -> Self {
        Journal {
            sink: Sink::Null,
            usage: BTreeMap::new(),
            options,
            frames_since_compact: 0,
            dirty: false,
            failed: None,
        }
    }

    /// Opens (or creates) the journal in `dir`: replays the manifest's
    /// segment chain (or a legacy v1 directory, which is migrated to a
    /// chain), truncates a torn tail on the active segment, and sweeps
    /// orphan files left by crashed chain mutations.
    pub(super) fn open(
        dir: &Path,
        options: LogOptions,
    ) -> Result<(Self, RecordMap<P>), TrustError> {
        fs::create_dir_all(dir)?;
        let manifest_path = dir.join(MANIFEST_FILE);
        let mut state = Replayed::default();
        let (manifest, frames, valid_len) = if manifest_path.exists() {
            let manifest = read_manifest(&fs::read(&manifest_path)?)?;
            let mut frames = 0u64;
            let mut valid_len = HEADER_LEN;
            let last = manifest.entries.len() - 1;
            for (i, entry) in manifest.entries.iter().enumerate() {
                let data = fs::read(entry.path(dir)).map_err(|e| {
                    if e.kind() == std::io::ErrorKind::NotFound {
                        // a manifest-listed segment cannot vanish by crash
                        // (deletes happen only after the superseding
                        // manifest is durable) — its absence is corruption
                        TrustError::Corrupt {
                            what: "segment listed in manifest",
                            offset: entry.seq,
                        }
                    } else {
                        TrustError::from(e)
                    }
                })?;
                check_header(&data, KIND_SEGMENT, "segment header")?;
                if i == last {
                    // the active segment: a crash tears at most its tail
                    let (len, n) = replay_tail(&data, &mut state)?;
                    valid_len = len;
                    frames += n;
                } else {
                    // sealed/compacted segments were fsynced before the
                    // manifest listed them: strictly valid, end to end
                    let n = replay_strict(&data, &mut state)?;
                    if entry.kind == SegmentKind::Raw {
                        frames += n;
                    }
                }
            }
            (manifest, frames, valid_len)
        } else if dir.join(LOG_FILE).exists() || dir.join(SNAP_FILE).exists() {
            // a version-1 directory: replay under the v1 rules, then
            // migrate the recovered state into a fresh segment chain
            state = legacy_load::<P>(dir)?;
            let manifest = migrate_legacy(dir, &state)?;
            (manifest, 0, HEADER_LEN)
        } else {
            let manifest = Manifest {
                entries: vec![SegmentEntry { seq: 1, kind: SegmentKind::Raw }],
                next_seq: 2,
            };
            create_segment(&manifest.entries[0].path(dir), KIND_SEGMENT, &[])?;
            sync_dir(dir)?;
            write_manifest(dir, &manifest)?;
            (manifest, 0, HEADER_LEN)
        };
        // drop the active segment's torn tail so appends continue from a
        // valid frame
        let mut file = OpenOptions::new()
            .read(true)
            .write(true)
            .open(dir.join(segment_file_name(manifest.active_seq())))?;
        file.set_len(valid_len as u64)?;
        file.seek(SeekFrom::End(0))?;
        remove_orphans(dir, &manifest);
        let journal = Journal {
            sink: Sink::File(FileSink {
                file,
                dir: dir.to_path_buf(),
                buf: Vec::new(),
                active_bytes: valid_len as u64,
                manifest,
            }),
            usage: state.usage,
            options,
            frames_since_compact: frames,
            dirty: false,
            failed: None,
        };
        Ok((journal, state.records))
    }

    pub(super) fn is_durable(&self) -> bool {
        matches!(self.sink, Sink::File(_))
    }

    pub(super) fn dir(&self) -> Option<&Path> {
        match &self.sink {
            Sink::File(f) => Some(&f.dir),
            Sink::Null => None,
        }
    }

    /// How many compacted segments lead the chain (0 when ephemeral).
    pub(super) fn compacted_segments(&self) -> usize {
        match &self.sink {
            Sink::File(f) => f.manifest.compacted_len(),
            Sink::Null => 0,
        }
    }

    /// Number of segments in the committed chain (0 when ephemeral).
    pub(super) fn segments(&self) -> usize {
        match &self.sink {
            Sink::File(f) => f.manifest.entries.len(),
            Sink::Null => 0,
        }
    }

    pub(super) fn fail(&mut self, msg: String) {
        self.failed = Some(msg);
    }

    /// Appends pre-encoded frame bytes (used by the concurrent paths that
    /// encode under the front's lane lock). Frames buffer even after a
    /// spill failure — the buffer drains incrementally once the disk
    /// recovers, so a transient error loses and duplicates nothing.
    pub(super) fn append_encoded(&mut self, bytes: &[u8], frames: u64) {
        self.frames_since_compact += frames;
        let spill = match &mut self.sink {
            Sink::Null => false,
            Sink::File(f) => {
                f.buf.extend_from_slice(bytes);
                self.dirty = true;
                self.failed.is_none()
                    && (f.buf.len() >= BUFFER_SPILL
                        || f.active_bytes + f.buf.len() as u64 >= self.options.segment_bytes)
            }
        };
        if spill {
            if let Err(e) = self.drain(self.options.fsync) {
                self.fail(e.to_string());
            } else {
                self.maybe_rotate();
            }
        }
    }

    pub(super) fn append(&mut self, frame: &Frame<P>) {
        match &mut self.sink {
            Sink::Null => self.frames_since_compact += 1,
            Sink::File(_) => {
                let mut bytes = Vec::with_capacity(64);
                encode_frame(&mut bytes, frame);
                self.append_encoded(&bytes, 1);
            }
        }
    }

    pub(super) fn append_record(&mut self, peer: P, task: TaskId, rec: TrustRecord) {
        self.append(&Frame::PutRecord { peer, task, rec });
    }

    /// Journals `peer`'s post-append usage log, skipping the frame when the
    /// state is already journaled (makes re-journaling sweeps cheap).
    pub(super) fn note_usage(&mut self, peer: P, log: UsageLog) {
        if self.usage.get(&peer) == Some(&log) {
            return;
        }
        self.usage.insert(peer, log);
        self.append(&Frame::PutUsage { peer, log });
    }

    /// Writes the buffer down to the active segment, fsyncing per
    /// `policy`, and keeps `active_bytes`/`dirty` truthful even across
    /// partial writes.
    fn drain(&mut self, policy: FsyncPolicy) -> std::io::Result<()> {
        if let Sink::File(f) = &mut self.sink {
            let (written, res) = write_out(&mut f.file, &mut f.buf, policy);
            f.active_bytes += written;
            res?;
            if policy != FsyncPolicy::Never {
                self.dirty = false;
            }
        }
        Ok(())
    }

    /// Rotates the active segment when it crossed the size threshold.
    /// Failures are sticky, never fatal: appends continue into the
    /// oversized segment and rotation retries at the next drain.
    fn maybe_rotate(&mut self) {
        if self.failed.is_some() {
            return;
        }
        let threshold = self.options.segment_bytes;
        if let Sink::File(f) = &mut self.sink {
            if f.buf.is_empty() && f.active_bytes >= threshold {
                if let Err(e) = rotate(f) {
                    self.failed = Some(e.to_string());
                }
            }
        }
    }

    /// Pushes buffered frames to the OS (fsync per policy). A success
    /// clears any earlier spill failure (the buffer has fully drained); a
    /// failure is recorded and returned — retrying after the disk recovers
    /// resumes exactly where the write stopped.
    pub(super) fn flush(&mut self) -> Result<(), TrustError> {
        self.flush_with(self.options.fsync)
    }

    /// [`Self::flush`] with the fsync forced regardless of policy.
    pub(super) fn sync(&mut self) -> Result<(), TrustError> {
        self.flush_with(FsyncPolicy::Always)
    }

    pub(super) fn flush_with(&mut self, policy: FsyncPolicy) -> Result<(), TrustError> {
        match self.drain(policy) {
            Ok(()) => {
                self.maybe_rotate();
                // surface a recorded append/rotation failure exactly once,
                // even though the buffer has since drained cleanly
                match self.failed.take() {
                    Some(msg) => Err(TrustError::Io(msg)),
                    None => Ok(()),
                }
            }
            Err(e) => {
                let msg = e.to_string();
                self.fail(msg.clone());
                Err(TrustError::Io(msg))
            }
        }
    }

    /// The group-commit barrier: under [`FsyncPolicy::Always`], drains the
    /// buffer and issues the one `sync_all` covering every frame appended
    /// since the last barrier — the call a write batch makes *before* its
    /// receipts are released, so an acked receipt is a durable receipt.
    /// A no-op under the other policies (their contract defers durability
    /// to flush time) and when nothing new was appended, so stacked
    /// barriers are free.
    ///
    /// Reports — but does not consume — a sticky I/O failure:
    /// [`Self::flush`]/[`Self::sync`] remain the surface-once point.
    pub(super) fn commit_barrier(&mut self) -> Result<(), TrustError> {
        if self.options.fsync != FsyncPolicy::Always {
            return Ok(());
        }
        if self.dirty && self.failed.is_none() {
            if let Err(e) = self.drain(FsyncPolicy::Always) {
                self.fail(e.to_string());
            } else {
                self.maybe_rotate();
            }
        }
        match &self.failed {
            Some(msg) => Err(TrustError::Io(msg.clone())),
            None => Ok(()),
        }
    }

    /// Writes the full state (`records` + the journal's usage logs) as one
    /// compacted segment and swaps the manifest to `[compacted, active]` —
    /// the chain-resetting full form. Buffered frames are superseded by
    /// the snapshot and dropped once the swap is durable. A crash anywhere
    /// recovers cleanly: before the manifest rename the old chain wins
    /// (the half-written new segments are orphans, swept on open); after
    /// it, the new chain wins and the old segments are the orphans.
    pub(super) fn compact_from(
        &mut self,
        records: impl Iterator<Item = (P, TaskId, TrustRecord)>,
    ) -> Result<(), TrustError> {
        if let Sink::File(f) = &mut self.sink {
            let mut body = Vec::new();
            for (peer, task, rec) in records {
                encode_frame(&mut body, &Frame::PutRecord { peer, task, rec });
            }
            for (&peer, &log) in &self.usage {
                encode_frame(&mut body, &Frame::PutUsage { peer, log });
            }
            swap_chain(f, body, f.manifest.next_seq, Vec::new(), |old| old.entries.clone())?;
        }
        self.dirty = false;
        self.frames_since_compact = 0;
        self.failed = None; // the snapshot superseded any unflushed bytes
        Ok(())
    }

    /// Incremental compaction: folds the **churn window** — every raw
    /// segment in the chain plus the unwritten buffer — into one new
    /// compacted segment appended after the existing compacted prefix,
    /// then deletes the raw segments it superseded. Cost is proportional
    /// to churn, not to total state size.
    ///
    /// Returns [`ChurnCompact::NeedsFull`] (without touching the chain)
    /// when the window holds a `clear` frame: an appended snapshot cannot
    /// express "records dropped", so the caller — which owns the full
    /// state — must run [`Self::compact_from`].
    pub(super) fn compact_churned(&mut self) -> Result<ChurnCompact, TrustError> {
        let Sink::File(f) = &mut self.sink else {
            self.frames_since_compact = 0;
            return Ok(ChurnCompact::Done);
        };
        let mut window = Replayed::<P>::default();
        let active_seq = f.manifest.active_seq();
        for entry in f.manifest.entries.iter().filter(|e| e.kind == SegmentKind::Raw) {
            let mut data = fs::read(entry.path(&f.dir))?;
            if entry.seq == active_seq {
                // the churn window ends exactly at what we wrote: the
                // drained prefix on disk plus the still-buffered suffix
                data.truncate(f.active_bytes as usize);
                data.extend_from_slice(&f.buf);
            }
            check_header(&data, KIND_SEGMENT, "segment header")?;
            replay_strict(&data, &mut window)?;
        }
        if window.saw_clear {
            return Ok(ChurnCompact::NeedsFull);
        }
        let mut body = Vec::new();
        for (&(peer, task), &rec) in &window.records {
            encode_frame(&mut body, &Frame::PutRecord { peer, task, rec });
        }
        for (&peer, &log) in &window.usage {
            encode_frame(&mut body, &Frame::PutUsage { peer, log });
        }
        let keep: Vec<SegmentEntry> = f
            .manifest
            .entries
            .iter()
            .copied()
            .filter(|e| e.kind == SegmentKind::Compacted)
            .collect();
        swap_chain(f, body, f.manifest.next_seq, keep, |old| {
            old.entries.iter().copied().filter(|e| e.kind == SegmentKind::Raw).collect()
        })?;
        self.dirty = false;
        self.frames_since_compact = 0;
        self.failed = None; // the window covered any unflushed bytes
        Ok(ChurnCompact::Done)
    }
}

/// Shared chain-swap tail of both compaction forms: writes `body` as
/// compacted segment `cseq`, creates a fresh active segment `cseq + 1`,
/// durably swaps the manifest to `keep + [compacted, active]`, and only
/// then (point of no return) deletes the superseded files `obsolete(old)`
/// and installs the new handle.
fn swap_chain(
    f: &mut FileSink,
    body: Vec<u8>,
    cseq: u64,
    mut keep: Vec<SegmentEntry>,
    obsolete: impl FnOnce(&Manifest) -> Vec<SegmentEntry>,
) -> Result<(), TrustError> {
    let aseq = cseq + 1;
    create_segment(&f.dir.join(segment_file_name(cseq)), KIND_SEGMENT, &body)?;
    let new_active = create_segment(&f.dir.join(segment_file_name(aseq)), KIND_SEGMENT, &[])?;
    sync_dir(&f.dir)?;
    keep.push(SegmentEntry { seq: cseq, kind: SegmentKind::Compacted });
    keep.push(SegmentEntry { seq: aseq, kind: SegmentKind::Raw });
    let manifest = Manifest { entries: keep, next_seq: aseq + 1 };
    write_manifest(&f.dir, &manifest)?;
    let old = std::mem::replace(&mut f.manifest, manifest);
    for entry in obsolete(&old) {
        let _ = fs::remove_file(entry.path(&f.dir));
    }
    f.file = new_active;
    f.active_bytes = HEADER_LEN as u64;
    f.buf.clear();
    Ok(())
}

/// Seals the active segment and swaps the manifest to a chain ending in a
/// fresh one. Everything here is made durable regardless of the fsync
/// policy — the outgoing segment becomes a mid-chain file, whose "strictly
/// valid" recovery contract only holds because this seal fsynced it.
fn rotate(f: &mut FileSink) -> std::io::Result<()> {
    debug_assert!(f.buf.is_empty(), "rotation follows a full drain");
    f.file.sync_all()?;
    let seq = f.manifest.next_seq;
    let new_file = create_segment(&f.dir.join(segment_file_name(seq)), KIND_SEGMENT, &[])?;
    sync_dir(&f.dir)?;
    let mut manifest = f.manifest.clone();
    manifest.entries.push(SegmentEntry { seq, kind: SegmentKind::Raw });
    manifest.next_seq = seq + 1;
    write_manifest(&f.dir, &manifest)?;
    f.manifest = manifest;
    f.file = new_file;
    f.active_bytes = HEADER_LEN as u64;
    Ok(())
}

/// Drains `buf` into `file` and fsyncs per `policy` (`sync_all`: appends
/// grow the file, so size metadata must be durable too — `sync_data` once
/// let `Always`-acked frames vanish as a torn tail). Written bytes are
/// consumed from the buffer incrementally and reported even on failure,
/// so `active_bytes` stays truthful and a retry resumes without
/// duplicating or dropping anything.
fn write_out(
    file: &mut File,
    buf: &mut Vec<u8>,
    policy: FsyncPolicy,
) -> (u64, std::io::Result<()>) {
    use std::io::Write;
    let mut written = 0u64;
    while !buf.is_empty() {
        match file.write(buf) {
            Ok(0) => {
                let e = std::io::Error::new(
                    std::io::ErrorKind::WriteZero,
                    "log append wrote zero bytes",
                );
                return (written, Err(e));
            }
            Ok(n) => {
                buf.drain(..n);
                written += n as u64;
            }
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(e) => return (written, Err(e)),
        }
    }
    if policy != FsyncPolicy::Never {
        if let Err(e) = file.sync_all() {
            return (written, Err(e));
        }
    }
    (written, Ok(()))
}

/// Sweeps files a crashed chain mutation (or a completed migration whose
/// deletes were lost) left behind: segment files the manifest does not
/// list, temp files, and the legacy pair. Best-effort — an orphan is
/// garbage by construction, never state.
fn remove_orphans(dir: &Path, manifest: &Manifest) {
    if let Ok(entries) = fs::read_dir(dir) {
        for entry in entries.flatten() {
            let name = entry.file_name();
            let Some(name) = name.to_str() else { continue };
            let listed = manifest.entries.iter().any(|e| segment_file_name(e.seq) == name);
            let orphan_segment = name.starts_with("seg-") && name.ends_with(".log") && !listed;
            let stale = matches!(name, MANIFEST_TMP | SNAP_TMP | LOG_FILE | SNAP_FILE);
            if orphan_segment || stale {
                let _ = fs::remove_file(entry.path());
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Legacy (version 1) recovery and migration
// ---------------------------------------------------------------------------

/// Validates a v1 magic/kind/version header and returns its compaction
/// generation (header bytes 6–7, the scheme the manifest replaced).
fn legacy_check_header(data: &[u8], kind: u8, what: &'static str) -> Result<u16, TrustError> {
    if data.len() < HEADER_LEN || &data[..4] != b"SIOT" || data[4] != kind {
        return Err(TrustError::Corrupt { what, offset: 0 });
    }
    if data[5] != LEGACY_FORMAT_VERSION {
        return Err(TrustError::UnsupportedFormat {
            found: data[5],
            expected: LEGACY_FORMAT_VERSION,
        });
    }
    Ok(u16::from_le_bytes([data[6], data[7]]))
}

/// Replays a version-1 directory under the v1 rules: strict snapshot, a
/// tail-tolerant log, and the generation check that discards a log
/// predating the snapshot (a crash between the v1 snapshot rename and log
/// truncation).
fn legacy_load<P: LogKey>(dir: &Path) -> Result<Replayed<P>, TrustError> {
    let mut state = Replayed::default();
    let snap_path = dir.join(SNAP_FILE);
    let snap_generation = if snap_path.exists() {
        let data = fs::read(&snap_path)?;
        let generation = legacy_check_header(&data, KIND_LEGACY_SNAP, "snapshot header")?;
        let mut off = HEADER_LEN;
        loop {
            match read_frame(&data, off) {
                FrameRead::End => break,
                FrameRead::Frame(frame, next) => {
                    state.apply(frame);
                    off = next;
                }
                FrameRead::Invalid => {
                    return Err(TrustError::Corrupt { what: "snapshot frame", offset: off as u64 })
                }
            }
        }
        Some(generation)
    } else {
        None
    };
    let log_path = dir.join(LOG_FILE);
    if log_path.exists() {
        let data = fs::read(&log_path)?;
        // a v1 crash could tear even the 8-byte header of a just-created
        // log; an empty/torn-header file carries no state, anything with a
        // full header must validate
        if data.len() >= HEADER_LEN {
            let log_generation = legacy_check_header(&data, KIND_LEGACY_LOG, "log header")?;
            match snap_generation {
                // generation mismatch: the log's absolute frames are
                // *older* than the snapshot — replaying them would
                // regress state. Discard the log.
                Some(snap_gen) if snap_gen != log_generation => {}
                _ => {
                    replay_tail(&data, &mut state)?;
                }
            }
        }
    }
    Ok(state)
}

/// Writes the legacy state as a fresh chain — one compacted segment (when
/// non-empty) plus an empty active segment — commits the manifest, and
/// removes the v1 files. Fully durable regardless of policy, like every
/// chain mutation.
fn migrate_legacy<P: LogKey>(dir: &Path, state: &Replayed<P>) -> Result<Manifest, TrustError> {
    let mut entries = Vec::new();
    let mut next_seq = 1u64;
    if !state.records.is_empty() || !state.usage.is_empty() {
        let mut body = Vec::new();
        for (&(peer, task), &rec) in &state.records {
            encode_frame(&mut body, &Frame::PutRecord { peer, task, rec });
        }
        for (&peer, &log) in &state.usage {
            encode_frame(&mut body, &Frame::PutUsage { peer, log });
        }
        create_segment(&dir.join(segment_file_name(next_seq)), KIND_SEGMENT, &body)?;
        entries.push(SegmentEntry { seq: next_seq, kind: SegmentKind::Compacted });
        next_seq += 1;
    }
    create_segment(&dir.join(segment_file_name(next_seq)), KIND_SEGMENT, &[])?;
    entries.push(SegmentEntry { seq: next_seq, kind: SegmentKind::Raw });
    sync_dir(dir)?;
    let manifest = Manifest { entries, next_seq: next_seq + 1 };
    write_manifest(dir, &manifest)?;
    for name in [LOG_FILE, SNAP_FILE, SNAP_TMP] {
        let _ = fs::remove_file(dir.join(name));
    }
    Ok(manifest)
}

impl<P: LogKey> Drop for Journal<P> {
    fn drop(&mut self) {
        // best effort: committed sessions survive a plain drop without an
        // explicit flush; errors here have nowhere to go
        let _ = self.flush_with(self.options.fsync);
    }
}

impl<P: LogKey> Clone for Journal<P> {
    /// Clones detach from the file: the clone keeps the recovered usage
    /// state but journals into a [`Sink::Null`], so it never competes for
    /// the original's segment chain.
    fn clone(&self) -> Self {
        Journal {
            sink: Sink::Null,
            usage: self.usage.clone(),
            options: self.options,
            frames_since_compact: 0,
            dirty: false,
            // a detached clone journals nowhere: the original's pending
            // I/O failure is not its problem
            failed: None,
        }
    }
}

impl<P: LogKey> fmt::Debug for Journal<P> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Journal")
            .field("dir", &self.dir())
            .field("segments", &self.segments())
            .field("usage_logs", &self.usage.len())
            .field("frames_since_compact", &self.frames_since_compact)
            .field("failed", &self.failed)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmpdir(tag: &str) -> PathBuf {
        use std::sync::atomic::{AtomicU64, Ordering};
        static NEXT: AtomicU64 = AtomicU64::new(0);
        let dir = std::env::temp_dir().join(format!(
            "siot-journal-{tag}-{}-{}",
            std::process::id(),
            NEXT.fetch_add(1, Ordering::Relaxed)
        ));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    fn rec(s: f64) -> TrustRecord {
        TrustRecord::with_priors(s, 0.5, 0.25, 0.125)
    }

    fn opts() -> LogOptions {
        LogOptions { fsync: FsyncPolicy::Never, compact_every: 0, ..LogOptions::default() }
    }

    /// Regression for the v1 `u16` wrapping generation stamp: after 65 536
    /// compactions a stale v1 log could collide with a current snapshot's
    /// generation and silently replay stale frames. The manifest's `u64`
    /// sequence numbers must sail straight through that boundary — chains
    /// whose sequence numbers cross 65 536 still recover exactly.
    #[test]
    fn segment_sequences_survive_the_u16_wrap_boundary() {
        let dir = tmpdir("wrap");
        {
            let (mut j, _) = Journal::<u32>::open(&dir, opts()).expect("fresh dir");
            // fast-forward the allocator to just under the old u16 wrap
            if let Sink::File(f) = &mut j.sink {
                f.manifest.next_seq = u64::from(u16::MAX) - 1;
            }
            j.append_record(1, TaskId(0), rec(0.125));
            // each compaction consumes two sequence numbers; three of them
            // cross the 65 536 boundary the v1 stamp wrapped at
            for round in 0..3u32 {
                j.append_record(round, TaskId(1), rec(0.5));
                j.compact_from(
                    [(1u32, TaskId(0), rec(0.125)), (round, TaskId(1), rec(0.5))].into_iter(),
                )
                .expect("compaction succeeds");
            }
            j.append_record(7, TaskId(2), rec(0.75));
            j.flush().expect("flush succeeds");
            if let Sink::File(f) = &j.sink {
                assert!(
                    f.manifest.next_seq > u64::from(u16::MAX),
                    "the chain crossed the wrap boundary ({})",
                    f.manifest.next_seq
                );
            }
        }
        let (j, records) = Journal::<u32>::open(&dir, opts()).expect("reopen");
        assert_eq!(records.get(&(1, TaskId(0))), Some(&rec(0.125)));
        assert_eq!(records.get(&(2, TaskId(1))), Some(&rec(0.5)), "post-wrap frames replay");
        assert_eq!(records.get(&(7, TaskId(2))), Some(&rec(0.75)), "post-wrap tail replays");
        drop(j);
        fs::remove_dir_all(&dir).expect("scratch removable");
    }

    /// Stacked barriers fsync once: the second barrier sees a clean buffer
    /// and skips the syscall (pinned via the dirty flag, which is all the
    /// barrier consults).
    #[test]
    fn barrier_is_idempotent_until_new_appends() {
        let dir = tmpdir("barrier");
        let options = LogOptions { fsync: FsyncPolicy::Always, ..LogOptions::default() };
        let (mut j, _) = Journal::<u32>::open(&dir, options).expect("fresh dir");
        j.append_record(1, TaskId(0), rec(0.5));
        assert!(j.dirty);
        j.commit_barrier().expect("barrier succeeds");
        assert!(!j.dirty, "barrier drained and synced");
        j.commit_barrier().expect("stacked barrier is a no-op");
        assert!(!j.dirty);
        j.append_record(2, TaskId(0), rec(0.25));
        assert!(j.dirty, "new appends re-arm the barrier");
        drop(j);
        fs::remove_dir_all(&dir).expect("scratch removable");
    }

    /// Under `Always`, appends buffer until the barrier — one fsync per
    /// batch, not per frame — and everything acked by a barrier is on
    /// disk: reopening recovers exactly the barriered frames.
    #[test]
    fn barriered_frames_recover_exactly() {
        let dir = tmpdir("barrier-recover");
        let options = LogOptions { fsync: FsyncPolicy::Always, ..LogOptions::default() };
        {
            let (mut j, _) = Journal::<u32>::open(&dir, options).expect("fresh dir");
            for i in 0..100u32 {
                j.append_record(i, TaskId(0), rec(0.5));
            }
            j.commit_barrier().expect("barrier succeeds");
            // no flush, no clean drop path needed: the barrier synced
            std::mem::forget(j);
        }
        let (j, records) = Journal::<u32>::open(&dir, options).expect("reopen");
        assert_eq!(records.len(), 100, "every barriered frame recovered");
        drop(j);
        fs::remove_dir_all(&dir).expect("scratch removable");
    }
}
