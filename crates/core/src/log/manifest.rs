//! The manifest: one atomically-swapped file naming the segment chain.
//!
//! The manifest is the durable truth about which segments constitute the
//! state and in what order they replay. Every chain mutation — rotation,
//! compaction, legacy migration — writes a new manifest to a temp file,
//! fsyncs it, renames it into place and fsyncs the directory; a crash on
//! either side of the rename leaves a complete old or complete new chain,
//! never a mix. Segment sequence numbers are `u64` and never reused, so a
//! file from a superseded chain can never be mistaken for current state.

use super::segment::{check_header, header, sync_dir};
use super::{segment_file_name, KIND_MANIFEST, MANIFEST_FILE, MANIFEST_TMP, MAX_FRAME_LEN};
use crate::error::TrustError;
use crate::framing::{self, RawFrame};
use std::fs::{self, File};
use std::io::Write;
use std::path::{Path, PathBuf};

/// What a chain entry holds.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum SegmentKind {
    /// Snapshot state written by a compaction: strictly valid, replayed
    /// in full.
    Compacted,
    /// Live appends: sealed raw segments are strictly valid; the last raw
    /// segment is the active one and tolerates a torn tail.
    Raw,
}

/// One segment in the chain.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct SegmentEntry {
    pub(crate) seq: u64,
    pub(crate) kind: SegmentKind,
}

impl SegmentEntry {
    pub(crate) fn path(&self, dir: &Path) -> PathBuf {
        dir.join(segment_file_name(self.seq))
    }
}

/// The decoded manifest: the chain in replay order plus the next segment
/// sequence number to allocate.
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) struct Manifest {
    pub(crate) entries: Vec<SegmentEntry>,
    pub(crate) next_seq: u64,
}

impl Manifest {
    /// Sequence number of the active (last) segment.
    pub(crate) fn active_seq(&self) -> u64 {
        self.entries.last().expect("validated: chains are non-empty").seq
    }

    /// How many compacted segments lead the chain.
    pub(crate) fn compacted_len(&self) -> usize {
        self.entries.iter().filter(|e| e.kind == SegmentKind::Compacted).count()
    }
}

fn corrupt(offset: u64) -> TrustError {
    TrustError::Corrupt { what: "manifest", offset }
}

/// Parses and validates manifest bytes. The manifest is written atomically,
/// so *any* damage — bad frame, trailing garbage, an empty or malformed
/// chain — is real corruption, never silently treated as a fresh store.
pub(crate) fn read_manifest(data: &[u8]) -> Result<Manifest, TrustError> {
    check_header(data, KIND_MANIFEST, "manifest header")?;
    let (payload, next) = match framing::read_frame(data, super::HEADER_LEN, MAX_FRAME_LEN) {
        RawFrame::Frame { payload, next } => (payload, next),
        _ => return Err(corrupt(super::HEADER_LEN as u64)),
    };
    if next != data.len() {
        return Err(corrupt(next as u64)); // trailing bytes after the chain frame
    }
    if payload.len() < 12 {
        return Err(corrupt(super::HEADER_LEN as u64));
    }
    let next_seq = u64::from_le_bytes(payload[..8].try_into().expect("length checked"));
    let count = u32::from_le_bytes(payload[8..12].try_into().expect("length checked")) as usize;
    if payload.len() != 12 + count * 9 || count == 0 {
        return Err(corrupt(super::HEADER_LEN as u64));
    }
    let mut entries = Vec::with_capacity(count);
    let mut seen_raw = false;
    for i in 0..count {
        let at = 12 + i * 9;
        let seq = u64::from_le_bytes(payload[at..at + 8].try_into().expect("length checked"));
        let kind = match payload[at + 8] {
            0 => SegmentKind::Compacted,
            1 => SegmentKind::Raw,
            _ => return Err(corrupt((at + 8) as u64)),
        };
        // the writer's invariant, enforced on read: compacted segments
        // lead, raw segments trail, the chain ends raw (the active
        // segment), and sequence numbers stay below next_seq
        if kind == SegmentKind::Compacted && seen_raw {
            return Err(corrupt(at as u64));
        }
        seen_raw |= kind == SegmentKind::Raw;
        if seq >= next_seq {
            return Err(corrupt(at as u64));
        }
        entries.push(SegmentEntry { seq, kind });
    }
    if !seen_raw {
        return Err(corrupt(super::HEADER_LEN as u64));
    }
    Ok(Manifest { entries, next_seq })
}

/// Encodes the manifest bytes (header + one checksummed chain frame).
pub(crate) fn encode_manifest(manifest: &Manifest) -> Vec<u8> {
    let mut out = header(KIND_MANIFEST).to_vec();
    let start = framing::begin_frame(&mut out);
    out.extend_from_slice(&manifest.next_seq.to_le_bytes());
    out.extend_from_slice(&(manifest.entries.len() as u32).to_le_bytes());
    for e in &manifest.entries {
        out.extend_from_slice(&e.seq.to_le_bytes());
        out.push(match e.kind {
            SegmentKind::Compacted => 0,
            SegmentKind::Raw => 1,
        });
    }
    framing::end_frame(&mut out, start);
    out
}

/// Atomically swaps the manifest: temp file, fsync, rename, directory
/// fsync. Always fully durable regardless of the fsync policy — chain
/// mutations are rare and recovery's correctness depends on them — and
/// every error propagates to the caller (which records it sticky).
pub(crate) fn write_manifest(dir: &Path, manifest: &Manifest) -> std::io::Result<()> {
    let tmp = dir.join(MANIFEST_TMP);
    {
        let mut f = File::create(&tmp)?;
        f.write_all(&encode_manifest(manifest))?;
        f.sync_all()?;
    }
    fs::rename(&tmp, dir.join(MANIFEST_FILE))?;
    sync_dir(dir)
}
