//! Transitivity of trust (§4.3, Eqs. 5–17).
//!
//! The traditional model (Eq. 5) multiplies trustworthiness along a path
//! and transits trust without restriction. The clarified model:
//!
//! * distinguishes *recommendation* trust (toward intermediate nodes, gated
//!   by ω₁) from *execution* trust (toward the trustee, gated by ω₂);
//! * combines two hops with Eq. 7, which keeps the
//!   `(1−TW_AB)(1−TW_BC)` term — mistrusting a recommender who misjudges
//!   their successor still yields usable information;
//! * restricts transfer to compatible task contexts, with two schemes:
//!   **conservative** (Eqs. 8–11: every characteristic of the new task must
//!   travel a single path) and **aggressive** (Eqs. 12–17: characteristics
//!   may be assessed along different paths and are recombined by weight).

use crate::error::TrustError;
use crate::infer::{infer_characteristic, infer_task, Experience};
use crate::task::{CharacteristicId, Task};

/// Eq. 5 — the traditional unrestricted product along a path.
pub fn traditional_chain(tws: &[f64]) -> f64 {
    tws.iter().product()
}

/// Eq. 7 — the two-hop combination rule:
/// `TW_AC = TW_AB·TW_BC + (1 − TW_AB)(1 − TW_BC)`.
pub fn two_hop(tw_ab: f64, tw_bc: f64) -> f64 {
    tw_ab * tw_bc + (1.0 - tw_ab) * (1.0 - tw_bc)
}

/// Folds Eq. 7 left-to-right along a path of trust values.
///
/// A single-element path is that element; the empty path is full trust
/// (the degenerate "no hops" case).
pub fn chain(tws: &[f64]) -> f64 {
    match tws.split_first() {
        None => 1.0,
        Some((&first, rest)) => rest.iter().fold(first, |acc, &t| two_hop(acc, t)),
    }
}

/// The ω₁ (recommendation) and ω₂ (execution) gates of Eqs. 7/11.
///
/// Trust only transits when every intermediate recommendation clears ω₁
/// and the final execution link clears ω₂. The paper describes both as
/// "preset trustworthiness with relatively high values".
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TransitivityGates {
    /// Minimum recommendation trustworthiness for intermediates.
    pub omega1: f64,
    /// Minimum execution trustworthiness for the final trustee link.
    pub omega2: f64,
}

impl TransitivityGates {
    /// The permissive gate (everything passes) — used by the traditional
    /// baseline, which transits trust without restriction.
    pub const OPEN: TransitivityGates = TransitivityGates { omega1: 0.0, omega2: 0.0 };

    /// A reasonable default: both gates at 0.5.
    pub fn default_gates() -> Self {
        TransitivityGates { omega1: 0.5, omega2: 0.5 }
    }

    /// Checks a path: `recommendations` are the intermediate links, and
    /// `execution` the final link toward the trustee.
    pub fn pass(&self, recommendations: &[f64], execution: f64) -> bool {
        recommendations.iter().all(|&r| r >= self.omega1) && execution >= self.omega2
    }
}

/// Conservative transitivity (Eqs. 8–11) along one path.
///
/// `links[i]` holds the experiences available at hop `i` (the first links
/// are recommendations, the last is the executing trustee). Every hop must
/// cover *all* characteristics of `new_task` (Eq. 8's intersection
/// condition); per-hop trustworthiness toward the new task is inferred with
/// Eq. 4 (Eqs. 9–10), gated, and combined with the Eq. 7 chain (Eq. 11).
///
/// Returns `None` when coverage or gates fail.
pub fn conservative_path(
    new_task: &Task,
    links: &[Vec<Experience<'_>>],
    gates: &TransitivityGates,
) -> Option<f64> {
    if links.is_empty() {
        return None;
    }
    let mut tws = Vec::with_capacity(links.len());
    for link in links {
        tws.push(infer_task(new_task, link).ok()?);
    }
    let (&execution, recommendations) = tws.split_last().expect("links is non-empty");
    if !gates.pass(recommendations, execution) {
        return None;
    }
    Some(chain(&tws))
}

/// One characteristic assessed along one path (the building block of
/// aggressive transitivity, Eqs. 13–16).
///
/// Infers the characteristic estimate at every hop and chains them with
/// Eq. 7. `None` if any hop lacks experience with the characteristic or a
/// gate fails.
pub fn characteristic_along_path(
    c: CharacteristicId,
    links: &[Vec<Experience<'_>>],
    gates: &TransitivityGates,
) -> Option<f64> {
    if links.is_empty() {
        return None;
    }
    let mut tws = Vec::with_capacity(links.len());
    for link in links {
        tws.push(infer_characteristic(c, link)?);
    }
    let (&execution, recommendations) = tws.split_last().expect("links is non-empty");
    if !gates.pass(recommendations, execution) {
        return None;
    }
    Some(chain(&tws))
}

/// Eq. 17 — recombines per-characteristic estimates into the
/// trustworthiness of the new task: `TW(τ″) = Σ w_i·TW(a_i(τ″))`.
///
/// Every characteristic of the task must have an estimate (Eq. 12's union
/// condition); otherwise [`TrustError::UncoveredCharacteristics`].
pub fn aggressive_combine(
    new_task: &Task,
    per_characteristic: &[(CharacteristicId, f64)],
) -> Result<f64, TrustError> {
    let mut tw = 0.0;
    let mut missing = 0usize;
    for &(c, w) in new_task.characteristics() {
        match per_characteristic.iter().find(|&&(cc, _)| cc == c) {
            Some(&(_, est)) => tw += w * est,
            None => missing += 1,
        }
    }
    if missing > 0 {
        return Err(TrustError::UncoveredCharacteristics { missing });
    }
    Ok(tw)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::task::TaskId;

    fn c(i: u32) -> CharacteristicId {
        CharacteristicId(i)
    }

    fn task(id: u32, cs: &[u32]) -> Task {
        Task::uniform(TaskId(id), cs.iter().map(|&i| c(i))).unwrap()
    }

    #[test]
    fn traditional_is_a_product() {
        assert!((traditional_chain(&[0.9, 0.8, 0.5]) - 0.36).abs() < 1e-12);
        assert_eq!(traditional_chain(&[]), 1.0);
    }

    #[test]
    fn two_hop_matches_eq7() {
        // 0.9·0.8 + 0.1·0.2 = 0.74
        assert!((two_hop(0.9, 0.8) - 0.74).abs() < 1e-12);
        // symmetric
        assert_eq!(two_hop(0.3, 0.7), two_hop(0.7, 0.3));
    }

    #[test]
    fn two_hop_keeps_the_mistrust_term() {
        // Both links distrusted: the traditional product says 0.04, but
        // Eq. 7 says agreement-of-mistrust is informative (0.04 + 0.72).
        let t = two_hop(0.2, 0.2);
        assert!((t - (0.04 + 0.64)).abs() < 1e-12);
        assert!(t > traditional_chain(&[0.2, 0.2]));
    }

    #[test]
    fn two_hop_stays_in_unit_interval() {
        for a in [0.0, 0.1, 0.5, 0.9, 1.0] {
            for b in [0.0, 0.3, 0.6, 1.0] {
                let t = two_hop(a, b);
                assert!((0.0..=1.0).contains(&t), "two_hop({a},{b}) = {t}");
            }
        }
    }

    #[test]
    fn chain_folds_left() {
        let manual = two_hop(two_hop(0.9, 0.8), 0.7);
        assert!((chain(&[0.9, 0.8, 0.7]) - manual).abs() < 1e-12);
        assert_eq!(chain(&[0.42]), 0.42);
        assert_eq!(chain(&[]), 1.0);
    }

    #[test]
    fn perfect_links_chain_to_one() {
        assert_eq!(chain(&[1.0, 1.0, 1.0, 1.0]), 1.0);
    }

    #[test]
    fn gates_block_low_links() {
        let gates = TransitivityGates { omega1: 0.7, omega2: 0.6 };
        assert!(gates.pass(&[0.8, 0.75], 0.65));
        assert!(!gates.pass(&[0.8, 0.65], 0.9), "ω₁ violated");
        assert!(!gates.pass(&[0.9], 0.5), "ω₂ violated");
        assert!(TransitivityGates::OPEN.pass(&[0.0], 0.0));
    }

    #[test]
    fn conservative_path_happy_case() {
        // B trusts C with task {0,1}; C trusts D with task {0,1,2};
        // new task {0} is covered by both.
        let t_bc = task(0, &[0, 1]);
        let t_cd = task(1, &[0, 1, 2]);
        let links = vec![vec![Experience::new(&t_bc, 0.9)], vec![Experience::new(&t_cd, 0.8)]];
        let new = task(9, &[0]);
        let tw = conservative_path(&new, &links, &TransitivityGates::default_gates()).unwrap();
        assert!((tw - two_hop(0.9, 0.8)).abs() < 1e-12);
    }

    #[test]
    fn conservative_path_blocks_uncovered() {
        let t_bc = task(0, &[0]);
        let t_cd = task(1, &[0, 1]);
        let links = vec![vec![Experience::new(&t_bc, 0.9)], vec![Experience::new(&t_cd, 0.9)]];
        // characteristic 1 missing from the first hop
        let new = task(9, &[0, 1]);
        assert!(conservative_path(&new, &links, &TransitivityGates::OPEN).is_none());
    }

    #[test]
    fn conservative_path_respects_gates() {
        let t = task(0, &[0]);
        let links = vec![vec![Experience::new(&t, 0.4)], vec![Experience::new(&t, 0.9)]];
        let new = task(9, &[0]);
        let gates = TransitivityGates { omega1: 0.5, omega2: 0.5 };
        assert!(conservative_path(&new, &links, &gates).is_none(), "recommendation too low");
        assert!(conservative_path(&new, &links, &TransitivityGates::OPEN).is_some());
    }

    #[test]
    fn conservative_path_empty_links() {
        let new = task(9, &[0]);
        assert!(conservative_path(&new, &[], &TransitivityGates::OPEN).is_none());
    }

    #[test]
    fn aggressive_paper_figure5b() {
        // {a1} along B←C←E with 0.9/0.8, {a2} along B←D←E with 0.7/0.9;
        // τ″ weighs both characteristics equally.
        let gates = TransitivityGates::OPEN;
        let t_a1 = task(0, &[1]);
        let t_a2 = task(1, &[2]);
        let path1 = vec![vec![Experience::new(&t_a1, 0.9)], vec![Experience::new(&t_a1, 0.8)]];
        let path2 = vec![vec![Experience::new(&t_a2, 0.7)], vec![Experience::new(&t_a2, 0.9)]];
        let tw_a1 = characteristic_along_path(c(1), &path1, &gates).unwrap();
        let tw_a2 = characteristic_along_path(c(2), &path2, &gates).unwrap();
        let new = task(9, &[1, 2]);
        let tw = aggressive_combine(&new, &[(c(1), tw_a1), (c(2), tw_a2)]).unwrap();
        let expected = 0.5 * two_hop(0.9, 0.8) + 0.5 * two_hop(0.7, 0.9);
        assert!((tw - expected).abs() < 1e-12);
    }

    #[test]
    fn aggressive_combine_requires_full_coverage() {
        let new = task(9, &[1, 2]);
        assert_eq!(
            aggressive_combine(&new, &[(c(1), 0.9)]),
            Err(TrustError::UncoveredCharacteristics { missing: 1 })
        );
    }

    #[test]
    fn characteristic_path_requires_every_hop() {
        let t_a1 = task(0, &[1]);
        let t_other = task(1, &[5]);
        let links = vec![vec![Experience::new(&t_a1, 0.9)], vec![Experience::new(&t_other, 0.9)]];
        assert!(characteristic_along_path(c(1), &links, &TransitivityGates::OPEN).is_none());
    }
}
