//! Tasks and their characteristics (§4.2 of the paper).
//!
//! A task `τ` is not an opaque label: it carries a bag of weighted
//! characteristics `{a_j(τ)}` (Eq. of §4.2). The real-time-traffic example
//! of the paper is a task with characteristics {GPS, image, velocity}; an
//! agent that proved itself on GPS and imaging tasks can be trusted for
//! traffic monitoring even though the task type is new (Eqs. 2–4).

use crate::error::TrustError;
use std::fmt;

/// Identifier of a task *type* (the paper's τ).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct TaskId(pub u32);

impl fmt::Display for TaskId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "τ{}", self.0)
    }
}

/// Identifier of a task characteristic (the paper's `a_j`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct CharacteristicId(pub u32);

impl fmt::Display for CharacteristicId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "a{}", self.0)
    }
}

/// A task: an id plus a non-empty bag of positively-weighted
/// characteristics. Weights are normalized to sum to 1 on construction, so
/// `w_i(τ)` of Eq. 4 can be read off directly.
#[derive(Debug, Clone, PartialEq)]
pub struct Task {
    id: TaskId,
    /// `(characteristic, normalized weight)`, sorted by characteristic id.
    characteristics: Vec<(CharacteristicId, f64)>,
}

impl Task {
    /// Builds a task from `(characteristic, weight)` pairs.
    ///
    /// Duplicated characteristics have their weights merged. Weights are
    /// normalized to sum to 1.
    pub fn new(
        id: TaskId,
        characteristics: impl IntoIterator<Item = (CharacteristicId, f64)>,
    ) -> Result<Self, TrustError> {
        let mut cs: Vec<(CharacteristicId, f64)> = Vec::new();
        for (c, w) in characteristics {
            if w <= 0.0 || !w.is_finite() {
                return Err(TrustError::NonPositiveWeight(w));
            }
            match cs.binary_search_by_key(&c, |&(cc, _)| cc) {
                Ok(i) => cs[i].1 += w,
                Err(i) => cs.insert(i, (c, w)),
            }
        }
        if cs.is_empty() {
            return Err(TrustError::EmptyTask);
        }
        let total: f64 = cs.iter().map(|&(_, w)| w).sum();
        for (_, w) in cs.iter_mut() {
            *w /= total;
        }
        Ok(Task { id, characteristics: cs })
    }

    /// Rebuilds a task from weights that are **already normalized** — the
    /// wire-decode path. [`Task::new`] divides weights by their sum, which
    /// would perturb the low bits of a task that round-tripped through a
    /// remote handle; a decoded task must compare bit-identical to the one
    /// that was encoded. Validates shape (sorted unique characteristics,
    /// finite positive weights, non-empty) but does not renormalize.
    pub(crate) fn from_normalized(
        id: TaskId,
        characteristics: Vec<(CharacteristicId, f64)>,
    ) -> Result<Self, TrustError> {
        if characteristics.is_empty() {
            return Err(TrustError::EmptyTask);
        }
        for &(_, w) in &characteristics {
            if !(w.is_finite() && w > 0.0) {
                return Err(TrustError::NonPositiveWeight(w));
            }
        }
        if !characteristics.windows(2).all(|w| w[0].0 < w[1].0) {
            return Err(TrustError::Corrupt { what: "wire task characteristics", offset: 0 });
        }
        Ok(Task { id, characteristics })
    }

    /// Builds a task whose characteristics all carry equal weight.
    pub fn uniform(
        id: TaskId,
        characteristics: impl IntoIterator<Item = CharacteristicId>,
    ) -> Result<Self, TrustError> {
        Task::new(id, characteristics.into_iter().map(|c| (c, 1.0)))
    }

    /// The task type id.
    pub fn id(&self) -> TaskId {
        self.id
    }

    /// `(characteristic, normalized weight)` pairs, sorted by id.
    pub fn characteristics(&self) -> &[(CharacteristicId, f64)] {
        &self.characteristics
    }

    /// Just the characteristic ids, sorted.
    pub fn characteristic_ids(&self) -> impl Iterator<Item = CharacteristicId> + '_ {
        self.characteristics.iter().map(|&(c, _)| c)
    }

    /// Number of characteristics.
    pub fn len(&self) -> usize {
        self.characteristics.len()
    }

    /// Tasks always have at least one characteristic; kept for API symmetry.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Normalized weight of `c` in this task, if present.
    pub fn weight_of(&self, c: CharacteristicId) -> Option<f64> {
        self.characteristics
            .binary_search_by_key(&c, |&(cc, _)| cc)
            .ok()
            .map(|i| self.characteristics[i].1)
    }

    /// Whether this task includes characteristic `c`.
    pub fn has_characteristic(&self, c: CharacteristicId) -> bool {
        self.weight_of(c).is_some()
    }

    /// Whether every characteristic of `self` appears in `other`
    /// (`{a(self)} ⊆ {a(other)}`, the conservative-transitivity condition
    /// of Eq. 8).
    pub fn covered_by(&self, other: &Task) -> bool {
        self.characteristic_ids().all(|c| other.has_characteristic(c))
    }

    /// Whether every characteristic of `self` appears in at least one task
    /// of `others` (`{a(self)} ⊆ ∪{a(τk)}`, the aggressive condition of
    /// Eq. 12).
    pub fn covered_by_union<'a>(&self, others: impl IntoIterator<Item = &'a Task> + Clone) -> bool {
        self.characteristic_ids()
            .all(|c| others.clone().into_iter().any(|t| t.has_characteristic(c)))
    }

    /// Characteristics shared with `other`.
    pub fn shared_characteristics(&self, other: &Task) -> Vec<CharacteristicId> {
        self.characteristic_ids().filter(|&c| other.has_characteristic(c)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn c(i: u32) -> CharacteristicId {
        CharacteristicId(i)
    }

    #[test]
    fn weights_normalize() {
        let t = Task::new(TaskId(0), [(c(1), 2.0), (c(2), 6.0)]).unwrap();
        assert!((t.weight_of(c(1)).unwrap() - 0.25).abs() < 1e-12);
        assert!((t.weight_of(c(2)).unwrap() - 0.75).abs() < 1e-12);
        let sum: f64 = t.characteristics().iter().map(|&(_, w)| w).sum();
        assert!((sum - 1.0).abs() < 1e-12);
    }

    #[test]
    fn duplicate_characteristics_merge() {
        let t = Task::new(TaskId(0), [(c(1), 1.0), (c(1), 3.0)]).unwrap();
        assert_eq!(t.len(), 1);
        assert_eq!(t.weight_of(c(1)), Some(1.0));
    }

    #[test]
    fn empty_task_rejected() {
        assert_eq!(Task::uniform(TaskId(0), []), Err(TrustError::EmptyTask));
    }

    #[test]
    fn bad_weights_rejected() {
        assert!(Task::new(TaskId(0), [(c(1), 0.0)]).is_err());
        assert!(Task::new(TaskId(0), [(c(1), -2.0)]).is_err());
        assert!(Task::new(TaskId(0), [(c(1), f64::NAN)]).is_err());
    }

    #[test]
    fn uniform_distributes_equally() {
        let t = Task::uniform(TaskId(3), [c(0), c(1), c(2), c(3)]).unwrap();
        for i in 0..4 {
            assert!((t.weight_of(c(i)).unwrap() - 0.25).abs() < 1e-12);
        }
        assert_eq!(t.id(), TaskId(3));
    }

    #[test]
    fn coverage_checks() {
        let gps_img = Task::uniform(TaskId(0), [c(0), c(1)]).unwrap();
        let gps = Task::uniform(TaskId(1), [c(0)]).unwrap();
        let vel = Task::uniform(TaskId(2), [c(2)]).unwrap();
        let traffic = Task::uniform(TaskId(3), [c(0), c(1), c(2)]).unwrap();

        assert!(gps.covered_by(&gps_img));
        assert!(!traffic.covered_by(&gps_img));
        assert!(traffic.covered_by_union([&gps_img, &vel]));
        assert!(!traffic.covered_by_union([&gps_img, &gps]));
        assert_eq!(traffic.shared_characteristics(&gps_img), vec![c(0), c(1)]);
    }

    #[test]
    fn characteristics_sorted_by_id() {
        let t = Task::new(TaskId(0), [(c(9), 1.0), (c(2), 1.0), (c(5), 1.0)]).unwrap();
        let ids: Vec<_> = t.characteristic_ids().collect();
        assert_eq!(ids, vec![c(2), c(5), c(9)]);
    }

    #[test]
    fn display_impls() {
        assert_eq!(TaskId(4).to_string(), "τ4");
        assert_eq!(CharacteristicId(2).to_string(), "a2");
    }

    #[test]
    fn is_empty_always_false() {
        let t = Task::uniform(TaskId(0), [c(1)]).unwrap();
        assert!(!t.is_empty());
    }
}
