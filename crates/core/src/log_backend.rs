//! Compatibility alias for the durable backends' old module path.
//!
//! The single-file journal grew into the segmented store in [`crate::log`]
//! — manifest-tracked chains, incremental compaction, group-commit fsync —
//! and the implementation lives there now. This module re-exports the
//! whole public surface so `siot_core::log_backend::{LogBackend, …}` paths
//! keep compiling.

pub use crate::log::*;
