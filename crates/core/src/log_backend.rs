//! Durable trust state: an append-only record log with snapshot compaction
//! and replay-on-open recovery.
//!
//! Every backend before this one was in-memory, so a process restart erased
//! exactly the history the paper's trust process depends on: the
//! direct-experience records Eq. 4 inference draws from, the §4.1 mutuality
//! usage logs, and the environment-corrected expectations of §4.5. This
//! module makes that state survive:
//!
//! * [`LogBackend`] — a [`TrustBackend`] whose in-memory ordered map (the
//!   same layout as [`BTreeBackend`](crate::backend::BTreeBackend), so it is
//!   bit-identical to it by construction) is mirrored into an append-only
//!   **frame log**. Reopening replays the snapshot plus the log tail and
//!   recovers the exact pre-crash state.
//! * [`WriteBehind`] — a [`ShardedBackend`] fronting the same journal as a
//!   cache: reads and folds hit the sharded map (including the concurrent
//!   shared-handle paths the [`ObserverPool`](crate::pool::ObserverPool)
//!   drives), while every folded record is journaled behind the front.
//!   [`WriteBehind::flush`]/[`WriteBehind::sync`] work through a shared
//!   handle, so an `Arc`-shared engine can still be made durable on demand.
//!
//! ## On-disk format (version 1)
//!
//! Two files live in the backend's directory:
//!
//! ```text
//! trust.log    8-byte header, then length-prefixed checksummed frames
//! trust.snap   same frame format; the compacted full state (atomic rename)
//! ```
//!
//! Header: `"SIOT"`, a kind byte (`'L'` log / `'S'` snapshot), the format
//! version byte, two zero bytes. A version mismatch fails open with
//! [`TrustError::UnsupportedFormat`] — the format is pinned by a golden-file
//! test, so readers never silently misparse old state.
//!
//! Frame: `len: u32 LE | crc32: u32 LE | payload`, CRC-32 (IEEE) over the
//! payload — the shared [`framing`] codec, the same frame
//! shape [`service::remote`](crate::service::remote) speaks over TCP.
//! Payloads carry **absolute** state — the post-fold record, the
//! post-append usage log — never deltas, so replaying a frame twice is
//! harmless and double-counting on recovery is unrepresentable.
//!
//! | kind byte | payload |
//! |---|---|
//! | `1` record | peer `u64`, task `u32`, `Ŝ Ĝ D̂ Ĉ` as `f64` bits, interactions `u64` |
//! | `2` usage log | peer `u64`, responsive `u64`, abusive `u64` |
//! | `3` clear | (records dropped, usage logs kept — mirrors [`TrustBackend::clear`]) |
//!
//! ## Crash recovery
//!
//! A crash can tear at most the frame being appended, so recovery accepts
//! the **longest checksum-valid prefix**: an incomplete or checksum-failing
//! frame at the tail is truncated away silently. A checksum failure on a
//! frame *followed by a valid frame* cannot be a torn append — that is real
//! corruption and surfaces as [`TrustError::Corrupt`]. Snapshots are
//! written to a temp file, fsynced and renamed into place, so any damage
//! inside a snapshot is also [`TrustError::Corrupt`].
//!
//! ## Durability knobs
//!
//! [`LogOptions`] controls the [`FsyncPolicy`] (when `fsync` runs) and
//! `compact_every` (auto-compaction after that many frames; `0` = manual
//! [`LogBackend::compact`] only). Appends buffer in memory and spill to the
//! OS at a fixed threshold, on [`flush`](TrustBackend::flush), on
//! compaction, and on drop — dropping an engine without an explicit flush
//! still persists every committed session. I/O failures on the append path
//! are sticky and surface at the next `flush`/`sync`/`compact`.

use crate::backend::{ConcurrentTrustBackend, ShardedBackend, TrustBackend};
use crate::error::TrustError;
use crate::framing::{self, RawFrame};
use crate::mutuality::UsageLog;
use crate::record::TrustRecord;
use crate::task::TaskId;
use std::collections::BTreeMap;
use std::fmt;
use std::fs::{self, File, OpenOptions};
use std::hash::Hash;
use std::io::{Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};
use std::sync::Mutex;

/// The on-disk format version this build reads and writes.
pub const FORMAT_VERSION: u8 = 1;

/// Log file name inside the backend directory.
pub const LOG_FILE: &str = "trust.log";
/// Snapshot file name inside the backend directory.
pub const SNAP_FILE: &str = "trust.snap";
const SNAP_TMP: &str = "trust.snap.tmp";

const HEADER_LEN: usize = 8;
const KIND_LOG: u8 = b'L';
const KIND_SNAP: u8 = b'S';

/// Frames are tens of bytes; anything claiming more than this is garbage,
/// rejected before the length can drive a huge allocation.
const MAX_FRAME_LEN: u32 = 1 << 16;

/// Buffered frame bytes spill to the OS past this size even without an
/// explicit flush, bounding the window a crash can lose under
/// [`FsyncPolicy::OnFlush`].
const BUFFER_SPILL: usize = 256 * 1024;

// ---------------------------------------------------------------------------
// Key serialization
// ---------------------------------------------------------------------------

/// Peer keys a durable backend can serialize: a lossless round trip through
/// `u64`. Implemented for the unsigned integers here; newtype ids (e.g. the
/// IoT crate's `DeviceId`) implement it over their inner integer.
pub trait LogKey: Copy + Ord {
    /// The key as its on-disk `u64` representation.
    fn to_log_u64(self) -> u64;
    /// Rebuilds the key from its on-disk representation. Only ever called
    /// with values a [`Self::to_log_u64`] of the same type produced (frames
    /// are checksummed), so truncating conversions are unreachable in
    /// practice.
    fn from_log_u64(raw: u64) -> Self;
}

macro_rules! impl_log_key {
    ($($t:ty),*) => {$(
        impl LogKey for $t {
            fn to_log_u64(self) -> u64 {
                self as u64
            }
            fn from_log_u64(raw: u64) -> Self {
                raw as $t
            }
        }
    )*};
}
impl_log_key!(u8, u16, u32, u64);

// ---------------------------------------------------------------------------
// Options
// ---------------------------------------------------------------------------

/// When the journal calls `fsync` on the log file.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum FsyncPolicy {
    /// Never fsync — buffered writes still reach the OS, but a host crash
    /// may lose the tail. Fastest; right for benches and recomputable state.
    Never,
    /// Fsync whenever buffered frames are pushed down: explicit
    /// [`flush`](TrustBackend::flush)/[`sync`](LogBackend::sync) calls,
    /// buffer spills, compaction, and drop. The default.
    #[default]
    OnFlush,
    /// Fsync after every appended frame. Maximum durability, one syscall
    /// pair per write — for small agents whose every interaction matters.
    Always,
}

/// Construction knobs for a durable backend.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct LogOptions {
    /// When `fsync` runs (default [`FsyncPolicy::OnFlush`]).
    pub fsync: FsyncPolicy,
    /// Auto-compact once this many frames accumulate since the last
    /// snapshot; `0` (the default) means compaction only happens through
    /// an explicit [`LogBackend::compact`] call.
    pub compact_every: u64,
}

// ---------------------------------------------------------------------------
// Frames
// ---------------------------------------------------------------------------

enum Frame<P> {
    PutRecord { peer: P, task: TaskId, rec: TrustRecord },
    PutUsage { peer: P, log: UsageLog },
    ClearRecords,
}

const KIND_PUT_RECORD: u8 = 1;
const KIND_PUT_USAGE: u8 = 2;
const KIND_CLEAR: u8 = 3;

fn encode_frame<P: LogKey>(out: &mut Vec<u8>, frame: &Frame<P>) {
    let start = framing::begin_frame(out);
    match *frame {
        Frame::PutRecord { peer, task, rec } => {
            out.push(KIND_PUT_RECORD);
            out.extend_from_slice(&peer.to_log_u64().to_le_bytes());
            out.extend_from_slice(&task.0.to_le_bytes());
            for v in [rec.s_hat, rec.g_hat, rec.d_hat, rec.c_hat] {
                out.extend_from_slice(&v.to_bits().to_le_bytes());
            }
            out.extend_from_slice(&rec.interactions.to_le_bytes());
        }
        Frame::PutUsage { peer, log } => {
            out.push(KIND_PUT_USAGE);
            out.extend_from_slice(&peer.to_log_u64().to_le_bytes());
            out.extend_from_slice(&log.responsive.to_le_bytes());
            out.extend_from_slice(&log.abusive.to_le_bytes());
        }
        Frame::ClearRecords => out.push(KIND_CLEAR),
    }
    framing::end_frame(out, start);
}

fn read_u64(b: &[u8], at: usize) -> u64 {
    u64::from_le_bytes(b[at..at + 8].try_into().expect("bounds checked by caller"))
}

fn decode_frame<P: LogKey>(payload: &[u8]) -> Option<Frame<P>> {
    match *payload.first()? {
        KIND_PUT_RECORD if payload.len() == 53 => Some(Frame::PutRecord {
            peer: P::from_log_u64(read_u64(payload, 1)),
            task: TaskId(u32::from_le_bytes(payload[9..13].try_into().ok()?)),
            rec: TrustRecord {
                s_hat: f64::from_bits(read_u64(payload, 13)),
                g_hat: f64::from_bits(read_u64(payload, 21)),
                d_hat: f64::from_bits(read_u64(payload, 29)),
                c_hat: f64::from_bits(read_u64(payload, 37)),
                interactions: read_u64(payload, 45),
            },
        }),
        KIND_PUT_USAGE if payload.len() == 25 => Some(Frame::PutUsage {
            peer: P::from_log_u64(read_u64(payload, 1)),
            log: UsageLog { responsive: read_u64(payload, 9), abusive: read_u64(payload, 17) },
        }),
        KIND_CLEAR if payload.len() == 1 => Some(Frame::ClearRecords),
        _ => None,
    }
}

enum FrameRead<P> {
    /// A valid frame and the offset of the next one.
    Frame(Frame<P>, usize),
    /// Clean end of data (exactly at a frame boundary).
    End,
    /// Torn, checksum-failing, or unparseable bytes at this offset.
    Invalid,
}

fn read_frame<P: LogKey>(data: &[u8], off: usize) -> FrameRead<P> {
    match framing::read_frame(data, off, MAX_FRAME_LEN) {
        RawFrame::End => FrameRead::End,
        RawFrame::Invalid => FrameRead::Invalid,
        RawFrame::Frame { payload, next } => match decode_frame(payload) {
            Some(frame) => FrameRead::Frame(frame, next),
            None => FrameRead::Invalid,
        },
    }
}

/// Whether a well-formed **log** frame (checksum-valid and decodable)
/// exists anywhere after the invalid bytes at `off` — the torn-tail vs.
/// mid-log-corruption test, with the payload decoder as the validity
/// check on top of the shared framing scan.
fn followed_by_valid_frame<P: LogKey>(data: &[u8], off: usize) -> bool {
    framing::followed_by_valid_frame(data, off, MAX_FRAME_LEN, |payload| {
        decode_frame::<P>(payload).is_some()
    })
}

/// Header bytes 6–7 carry the **compaction generation** (`u16` LE,
/// wrapping): each compaction writes the snapshot with generation `g + 1`
/// and then rewrites the truncated log's header to match. On open, a log
/// whose generation differs from the snapshot's predates it — the crash
/// fell between the snapshot rename and the log truncation — and replaying
/// its stale absolute frames over the newer snapshot would regress state,
/// so such a log is discarded instead of replayed.
fn header(kind: u8, generation: u16) -> [u8; HEADER_LEN] {
    let g = generation.to_le_bytes();
    [b'S', b'I', b'O', b'T', kind, FORMAT_VERSION, g[0], g[1]]
}

/// Validates magic/kind/version and returns the header's generation.
fn check_header(data: &[u8], kind: u8, what: &'static str) -> Result<u16, TrustError> {
    if data.len() < HEADER_LEN || &data[..4] != b"SIOT" || data[4] != kind {
        return Err(TrustError::Corrupt { what, offset: 0 });
    }
    if data[5] != FORMAT_VERSION {
        return Err(TrustError::UnsupportedFormat { found: data[5], expected: FORMAT_VERSION });
    }
    Ok(u16::from_le_bytes([data[6], data[7]]))
}

// ---------------------------------------------------------------------------
// Recovery
// ---------------------------------------------------------------------------

/// The recovered record map, keyed like the ordered backends.
type RecordMap<P> = BTreeMap<(P, TaskId), TrustRecord>;

struct Replayed<P> {
    records: RecordMap<P>,
    usage: BTreeMap<P, UsageLog>,
}

impl<P> Default for Replayed<P> {
    fn default() -> Self {
        Replayed { records: BTreeMap::new(), usage: BTreeMap::new() }
    }
}

impl<P: LogKey> Replayed<P> {
    fn apply(&mut self, frame: Frame<P>) {
        match frame {
            Frame::PutRecord { peer, task, rec } => {
                self.records.insert((peer, task), rec);
            }
            Frame::PutUsage { peer, log } => {
                self.usage.insert(peer, log);
            }
            Frame::ClearRecords => self.records.clear(),
        }
    }
}

/// Strict replay for snapshots: every byte must belong to a valid frame.
/// Returns the snapshot's generation.
fn load_snapshot<P: LogKey>(data: &[u8], state: &mut Replayed<P>) -> Result<u16, TrustError> {
    let generation = check_header(data, KIND_SNAP, "snapshot header")?;
    let mut off = HEADER_LEN;
    loop {
        match read_frame(data, off) {
            FrameRead::End => return Ok(generation),
            FrameRead::Frame(frame, next) => {
                state.apply(frame);
                off = next;
            }
            FrameRead::Invalid => {
                return Err(TrustError::Corrupt { what: "snapshot frame", offset: off as u64 })
            }
        }
    }
}

/// Tail-tolerant replay for logs: returns `(valid_len, frames_replayed)` of
/// the longest checksum-valid prefix, or [`TrustError::Corrupt`] when an
/// invalid frame is *not* the tail.
fn replay_log<P: LogKey>(data: &[u8], state: &mut Replayed<P>) -> Result<(usize, u64), TrustError> {
    let mut off = HEADER_LEN;
    let mut frames = 0u64;
    loop {
        match read_frame(data, off) {
            FrameRead::End => return Ok((off, frames)),
            FrameRead::Frame(frame, next) => {
                state.apply(frame);
                off = next;
                frames += 1;
            }
            FrameRead::Invalid => {
                if followed_by_valid_frame::<P>(data, off) {
                    return Err(TrustError::Corrupt {
                        what: "log frame checksum",
                        offset: off as u64,
                    });
                }
                return Ok((off, frames)); // torn tail: recover the prefix
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Journal: the shared durable sink under LogBackend and WriteBehind
// ---------------------------------------------------------------------------

enum Sink {
    /// Ephemeral: frames are dropped as they are appended. The mode of
    /// [`Default`] construction and of clones detached from their file.
    Null,
    /// File-backed: frames buffer in `buf` and spill to `file`.
    File { file: File, dir: PathBuf, buf: Vec<u8> },
}

struct Journal<P: LogKey> {
    sink: Sink,
    /// Authoritative post-append usage logs (what the engine recovers).
    usage: BTreeMap<P, UsageLog>,
    options: LogOptions,
    frames_since_compact: u64,
    /// The current compaction generation (log header bytes 6–7).
    generation: u16,
    /// Set when a compaction renamed the snapshot but failed to restamp
    /// the log to the new generation: appending to the still-stale log
    /// would be silently discarded on the next open, so spills pause and
    /// the next flush retries the restamp before draining the buffer.
    pending_restamp: Option<u16>,
    /// Last I/O failure on the spill path, surfaced (exactly once) at the
    /// next flush/sync. Frames keep buffering after a failure — the buffer
    /// drains incrementally on the next successful flush, so nothing is
    /// lost or written twice.
    failed: Option<String>,
}

impl<P: LogKey> Journal<P> {
    fn ephemeral(options: LogOptions) -> Self {
        Journal {
            sink: Sink::Null,
            usage: BTreeMap::new(),
            options,
            frames_since_compact: 0,
            generation: 0,
            pending_restamp: None,
            failed: None,
        }
    }

    /// Opens (or creates) the journal in `dir`, replaying snapshot + log.
    fn open(dir: &Path, options: LogOptions) -> Result<(Self, RecordMap<P>), TrustError> {
        fs::create_dir_all(dir)?;
        let mut state = Replayed::default();
        let snap_path = dir.join(SNAP_FILE);
        let snap_generation = if snap_path.exists() {
            Some(load_snapshot(&fs::read(&snap_path)?, &mut state)?)
        } else {
            None
        };
        let log_path = dir.join(LOG_FILE);
        let mut valid_len = HEADER_LEN as u64;
        let mut frames = 0u64;
        let mut fresh = true;
        let mut generation = snap_generation.unwrap_or(0);
        if log_path.exists() {
            let data = fs::read(&log_path)?;
            // a crash can tear even the 8-byte header of a just-created
            // log; an empty/torn-header file is re-initialized, anything
            // with a full header must validate
            if data.len() >= HEADER_LEN {
                let log_generation = check_header(&data, KIND_LOG, "log header")?;
                match snap_generation {
                    // generation mismatch: the crash fell between the
                    // snapshot rename and the log truncation, so the log's
                    // absolute frames are *older* than the snapshot —
                    // replaying them would regress state. Discard the log.
                    Some(snap_gen) if snap_gen != log_generation => {}
                    _ => {
                        let (len, n) = replay_log(&data, &mut state)?;
                        valid_len = len as u64;
                        frames = n;
                        generation = log_generation;
                        fresh = false;
                    }
                }
            }
        }
        // truncation is explicit (`set_len` below): fresh files are reset
        // to a bare header, recovered files keep their valid prefix
        let mut file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(false)
            .open(&log_path)?;
        if fresh {
            file.set_len(0)?;
            file.write_all(&header(KIND_LOG, generation))?;
            if options.fsync != FsyncPolicy::Never {
                file.sync_all()?;
            }
        } else {
            // drop the torn tail so appends continue from a valid frame
            file.set_len(valid_len)?;
        }
        file.seek(SeekFrom::End(0))?;
        let journal = Journal {
            sink: Sink::File { file, dir: dir.to_path_buf(), buf: Vec::new() },
            usage: state.usage,
            options,
            frames_since_compact: frames,
            generation,
            pending_restamp: None,
            failed: None,
        };
        Ok((journal, state.records))
    }

    fn is_durable(&self) -> bool {
        matches!(self.sink, Sink::File { .. })
    }

    fn dir(&self) -> Option<&Path> {
        match &self.sink {
            Sink::File { dir, .. } => Some(dir),
            Sink::Null => None,
        }
    }

    fn fail(&mut self, msg: String) {
        self.failed = Some(msg);
    }

    /// Appends pre-encoded frame bytes (used by the concurrent paths that
    /// encode under the front's lane lock). Frames buffer even after a
    /// spill failure — the buffer drains incrementally once the disk
    /// recovers, so a transient error loses and duplicates nothing.
    fn append_encoded(&mut self, bytes: &[u8], frames: u64) {
        self.frames_since_compact += frames;
        let spill = match &mut self.sink {
            Sink::Null => false,
            Sink::File { buf, .. } => {
                buf.extend_from_slice(bytes);
                self.failed.is_none()
                    && self.pending_restamp.is_none()
                    && (buf.len() >= BUFFER_SPILL || self.options.fsync == FsyncPolicy::Always)
            }
        };
        if spill {
            if let Err(e) = write_out(&mut self.sink, self.options.fsync) {
                self.fail(e.to_string());
            }
        }
    }

    fn append(&mut self, frame: &Frame<P>) {
        match &mut self.sink {
            Sink::Null => self.frames_since_compact += 1,
            Sink::File { .. } => {
                let mut bytes = Vec::with_capacity(64);
                encode_frame(&mut bytes, frame);
                self.append_encoded(&bytes, 1);
            }
        }
    }

    fn append_record(&mut self, peer: P, task: TaskId, rec: TrustRecord) {
        self.append(&Frame::PutRecord { peer, task, rec });
    }

    /// Journals `peer`'s post-append usage log, skipping the frame when the
    /// state is already journaled (makes re-journaling sweeps cheap).
    fn note_usage(&mut self, peer: P, log: UsageLog) {
        if self.usage.get(&peer) == Some(&log) {
            return;
        }
        self.usage.insert(peer, log);
        self.append(&Frame::PutUsage { peer, log });
    }

    /// Pushes buffered frames to the OS (fsync per policy). A success
    /// clears any earlier spill failure (the buffer has fully drained); a
    /// failure is recorded and returned — retrying after the disk recovers
    /// resumes exactly where the write stopped.
    fn flush(&mut self) -> Result<(), TrustError> {
        self.flush_with(self.options.fsync)
    }

    /// [`Self::flush`] with the fsync forced regardless of policy.
    fn sync(&mut self) -> Result<(), TrustError> {
        self.flush_with(FsyncPolicy::Always)
    }

    fn flush_with(&mut self, policy: FsyncPolicy) -> Result<(), TrustError> {
        // a half-finished compaction first: the log must carry the
        // snapshot's generation before any buffered frame may reach it
        // (frames under a stale generation would be discarded on open)
        if let Some(generation) = self.pending_restamp {
            if let Sink::File { file, .. } = &mut self.sink {
                if let Err(e) = restamp_log(file, generation) {
                    let msg = e.to_string();
                    self.failed = Some(msg.clone());
                    return Err(TrustError::Io(msg));
                }
            }
            self.pending_restamp = None;
        }
        match write_out(&mut self.sink, policy) {
            // surface a recorded append/compaction failure exactly once,
            // even though the buffer has since drained cleanly
            Ok(()) => match self.failed.take() {
                Some(msg) => Err(TrustError::Io(msg)),
                None => Ok(()),
            },
            Err(e) => {
                let msg = e.to_string();
                self.fail(msg.clone());
                Err(TrustError::Io(msg))
            }
        }
    }

    /// Writes the full state (`records` + the journal's usage logs) as an
    /// atomically-renamed snapshot under generation `g + 1`, then truncates
    /// the log and restamps its header to match. Buffered frames are
    /// superseded by the snapshot and dropped. A crash anywhere in the
    /// sequence recovers cleanly: before the rename the old snapshot + log
    /// win; after it, the log's stale generation makes open discard it.
    fn compact_from(
        &mut self,
        records: impl Iterator<Item = (P, TaskId, TrustRecord)>,
    ) -> Result<(), TrustError> {
        let usage = &self.usage;
        let next_generation = self.generation.wrapping_add(1);
        match &mut self.sink {
            Sink::Null => {}
            Sink::File { file, dir, buf } => {
                let mut out = header(KIND_SNAP, next_generation).to_vec();
                for (peer, task, rec) in records {
                    encode_frame(&mut out, &Frame::PutRecord { peer, task, rec });
                }
                for (&peer, &log) in usage {
                    encode_frame(&mut out, &Frame::PutUsage { peer, log });
                }
                let tmp = dir.join(SNAP_TMP);
                {
                    let mut f = File::create(&tmp)?;
                    f.write_all(&out)?;
                    f.sync_all()?;
                }
                fs::rename(&tmp, dir.join(SNAP_FILE))?;
                if let Ok(d) = File::open(&dir) {
                    let _ = d.sync_all(); // directory entry durability: best effort
                }
                buf.clear();
                // from here on the renamed snapshot is the durable truth;
                // a restamp failure must not abandon the generation
                // bookkeeping, or later appends would land in a log the
                // next open discards — record it and let flush retry
                if let Err(e) = restamp_log(file, next_generation) {
                    let msg = e.to_string();
                    self.pending_restamp = Some(next_generation);
                    self.generation = next_generation;
                    self.frames_since_compact = 0;
                    self.failed = Some(msg.clone());
                    return Err(TrustError::Io(msg));
                }
                if self.options.fsync != FsyncPolicy::Never {
                    file.sync_all()?;
                }
            }
        }
        self.generation = next_generation;
        self.frames_since_compact = 0;
        self.pending_restamp = None;
        self.failed = None; // the snapshot superseded any unflushed bytes
        Ok(())
    }
}

/// Truncates the log to a bare header stamped with `generation`. Truncate
/// happens before the header rewrite, so a torn rewrite leaves an empty
/// frame-less log — never stale frames under a matching generation.
fn restamp_log(file: &mut File, generation: u16) -> std::io::Result<()> {
    file.set_len(HEADER_LEN as u64)?;
    file.seek(SeekFrom::Start(0))?;
    file.write_all(&header(KIND_LOG, generation))?;
    file.seek(SeekFrom::End(0))?;
    Ok(())
}

/// Drains the file sink's buffer and fsyncs per `policy`. Written bytes
/// are consumed from the buffer incrementally, so a mid-write failure
/// leaves exactly the unwritten suffix buffered — a retry resumes without
/// duplicating or dropping anything.
fn write_out(sink: &mut Sink, policy: FsyncPolicy) -> std::io::Result<()> {
    if let Sink::File { file, buf, .. } = sink {
        while !buf.is_empty() {
            match file.write(buf) {
                Ok(0) => {
                    return Err(std::io::Error::new(
                        std::io::ErrorKind::WriteZero,
                        "log append wrote zero bytes",
                    ))
                }
                Ok(n) => {
                    buf.drain(..n);
                }
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                Err(e) => return Err(e),
            }
        }
        if policy != FsyncPolicy::Never {
            file.sync_data()?;
        }
    }
    Ok(())
}

impl<P: LogKey> Drop for Journal<P> {
    fn drop(&mut self) {
        // best effort: committed sessions survive a plain drop without an
        // explicit flush; errors here have nowhere to go. flush_with also
        // retries a pending post-compaction restamp first, so buffered
        // frames never land in a log the next open would discard.
        let _ = self.flush_with(self.options.fsync);
    }
}

impl<P: LogKey> Clone for Journal<P> {
    /// Clones detach from the file: the clone keeps the recovered usage
    /// state but journals into a [`Sink::Null`], so it never competes for
    /// the original's log file.
    fn clone(&self) -> Self {
        Journal {
            sink: Sink::Null,
            usage: self.usage.clone(),
            options: self.options,
            frames_since_compact: 0,
            generation: 0,
            pending_restamp: None,
            // a detached clone journals nowhere: the original's pending
            // I/O failure is not its problem
            failed: None,
        }
    }
}

impl<P: LogKey> fmt::Debug for Journal<P> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Journal")
            .field("dir", &self.dir())
            .field("usage_logs", &self.usage.len())
            .field("frames_since_compact", &self.frames_since_compact)
            .field("failed", &self.failed)
            .finish()
    }
}

// ---------------------------------------------------------------------------
// LogBackend
// ---------------------------------------------------------------------------

/// The durable ordered-map backend: a [`BTreeBackend`]-layout in-memory map
/// mirrored into the append-only journal described in the [module
/// docs](self).
///
/// Reads are pure memory; every write appends one absolute-state frame.
/// Construction without a directory ([`Default`]/[`LogBackend::new`]) is
/// ephemeral — same semantics, nothing journaled — which is what the
/// backend-equivalence property tests exercise. [`LogBackend::open`] makes
/// it durable.
///
/// Cloning a file-backed `LogBackend` keeps the full in-memory state but
/// **detaches from the file**: the clone journals nowhere (two handles
/// appending to one log would interleave corruptly). Clone is for
/// forking experiments, not for sharing a durable store.
///
/// [`BTreeBackend`]: crate::backend::BTreeBackend
#[derive(Clone)]
pub struct LogBackend<P: LogKey> {
    mem: BTreeMap<(P, TaskId), TrustRecord>,
    journal: Journal<P>,
}

impl<P: LogKey> Default for LogBackend<P> {
    fn default() -> Self {
        LogBackend { mem: BTreeMap::new(), journal: Journal::ephemeral(LogOptions::default()) }
    }
}

impl<P: LogKey> LogBackend<P> {
    /// Opens (or creates) a durable backend in `dir` with default options:
    /// replays `trust.snap` plus the checksum-valid prefix of `trust.log`,
    /// truncating a torn tail frame.
    pub fn open(dir: impl AsRef<Path>) -> Result<Self, TrustError> {
        Self::open_with(dir, LogOptions::default())
    }

    /// [`Self::open`] with explicit [`LogOptions`].
    pub fn open_with(dir: impl AsRef<Path>, options: LogOptions) -> Result<Self, TrustError> {
        let (journal, mem) = Journal::open(dir.as_ref(), options)?;
        Ok(LogBackend { mem, journal })
    }

    /// Whether this backend persists to disk (`false` for ephemeral
    /// construction and detached clones).
    pub fn is_durable(&self) -> bool {
        self.journal.is_durable()
    }

    /// The backing directory, if durable.
    pub fn dir(&self) -> Option<&Path> {
        self.journal.dir()
    }

    /// Frames appended since the last compaction (replayed log frames
    /// count, so a freshly opened backend reports its replay backlog).
    pub fn frames_since_compaction(&self) -> u64 {
        self.journal.frames_since_compact
    }

    /// Rewrites the full state as an atomic snapshot and truncates the
    /// log — the explicit form of the `compact_every` knob. No-op (beyond
    /// resetting the frame counter) for ephemeral backends.
    pub fn compact(&mut self) -> Result<(), TrustError> {
        self.journal.compact_from(self.mem.iter().map(|(&(p, t), &r)| (p, t, r)))
    }

    /// Forces buffered frames down **and** fsyncs regardless of the
    /// configured [`FsyncPolicy`] — the "I need this on disk now" call.
    pub fn sync(&mut self) -> Result<(), TrustError> {
        self.journal.sync()
    }

    fn after_write(&mut self) {
        let every = self.journal.options.compact_every;
        if every > 0 && self.journal.frames_since_compact >= every {
            // auto-compaction failure is sticky; the next flush surfaces it
            if let Err(e) = self.compact() {
                self.journal.fail(e.to_string());
            }
        }
    }
}

impl<P: LogKey> fmt::Debug for LogBackend<P> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("LogBackend")
            .field("records", &self.mem.len())
            .field("journal", &self.journal)
            .finish()
    }
}

impl<P: LogKey + fmt::Debug> TrustBackend<P> for LogBackend<P> {
    fn get(&self, peer: P, task: TaskId) -> Option<TrustRecord> {
        self.mem.get(&(peer, task)).copied()
    }

    fn insert(&mut self, peer: P, task: TaskId, rec: TrustRecord) {
        self.mem.insert((peer, task), rec);
        self.journal.append_record(peer, task, rec);
        self.after_write();
    }

    fn update(
        &mut self,
        peer: P,
        task: TaskId,
        f: &mut dyn FnMut(Option<TrustRecord>) -> TrustRecord,
    ) {
        let rec = match self.mem.get_mut(&(peer, task)) {
            Some(slot) => {
                *slot = f(Some(*slot));
                *slot
            }
            None => {
                let rec = f(None);
                self.mem.insert((peer, task), rec);
                rec
            }
        };
        self.journal.append_record(peer, task, rec);
        self.after_write();
    }

    fn for_each_experience(&self, peer: P, f: &mut dyn FnMut(TaskId, TrustRecord)) {
        for (&(_, tid), &rec) in self.mem.range((peer, TaskId(0))..=(peer, TaskId(u32::MAX))) {
            f(tid, rec);
        }
    }

    fn known_peers(&self) -> Vec<P> {
        let mut peers: Vec<P> = self.mem.keys().map(|&(p, _)| p).collect();
        peers.dedup(); // key order keeps a peer's records adjacent
        peers
    }

    fn len(&self) -> usize {
        self.mem.len()
    }

    fn clear(&mut self) {
        self.mem.clear();
        self.journal.append(&Frame::ClearRecords);
        self.after_write();
    }

    fn note_usage_log(&mut self, peer: P, log: UsageLog) {
        self.journal.note_usage(peer, log);
        self.after_write();
    }

    fn recovered_usage_logs(&self) -> Vec<(P, UsageLog)> {
        self.journal.usage.iter().map(|(&p, &l)| (p, l)).collect()
    }

    fn flush(&mut self) -> Result<(), TrustError> {
        self.journal.flush()
    }
}

// ---------------------------------------------------------------------------
// WriteBehind
// ---------------------------------------------------------------------------

/// A [`ShardedBackend`] fronting the durable journal as a cache.
///
/// All reads and folds hit the sharded in-memory front — including the
/// concurrent shared-handle paths ([`ConcurrentTrustBackend`]), so an
/// [`ObserverPool`](crate::pool::ObserverPool) can drive it exactly like a
/// plain `ShardedBackend` — while every folded record is also journaled.
/// Frame appends happen under the front's per-lane lock (lane → journal
/// lock order everywhere), so the journal's per-key frame order always
/// matches fold order and replay lands on the exact final state.
///
/// Durability is **write-behind**: frames buffer until
/// [`flush`](Self::flush)/[`sync`](Self::sync) (both usable through a
/// shared `&self`, e.g. via [`TrustEngine::backend`]), a buffer spill,
/// or drop. A consistent snapshot needs exclusive access, so compaction
/// runs via [`Self::compact`] or the `compact_every` auto-trigger on the
/// `&mut` write paths — purely shared writers compact whenever the owner
/// regains `&mut` (the IoT coordinator's `compact_ledger` is the model).
///
/// Journal appends are **batched per lane run**: the shared batch paths
/// ([`update_batch_shared`](ConcurrentTrustBackend::update_batch_shared),
/// [`update_lane_run_shared`](ConcurrentTrustBackend::update_lane_run_shared)
/// — the [`ObserverPool`](crate::pool::ObserverPool) dispatch seam) encode
/// a run's frames into a local buffer while folding and take the journal
/// mutex **once per run**, not once per record. The buffered append still
/// happens on the run's last fold, *under the front's lane lock*, so the
/// journal's per-key frame order always equals fold order even with
/// concurrent writers on overlapping keys. Only the single-record
/// [`update_shared`](ConcurrentTrustBackend::update_shared) pays the
/// per-record mutex.
///
/// [`TrustEngine::backend`]: crate::store::TrustEngine::backend
pub struct WriteBehind<P: LogKey + Hash> {
    front: ShardedBackend<P>,
    journal: Mutex<Journal<P>>,
}

impl<P: LogKey + Hash> Default for WriteBehind<P> {
    fn default() -> Self {
        WriteBehind {
            front: ShardedBackend::default(),
            journal: Mutex::new(Journal::ephemeral(LogOptions::default())),
        }
    }
}

impl<P: LogKey + Hash> WriteBehind<P> {
    fn lock(&self) -> std::sync::MutexGuard<'_, Journal<P>> {
        self.journal.lock().unwrap_or_else(|e| e.into_inner())
    }
}

/// Run-scoped frame buffer for [`WriteBehind`]'s batched write paths. On
/// the normal path the run's frames are appended in one shot — from the
/// last fold on the shared paths (under the front's lane lock), on drop
/// at the end of the exclusive batch. If a fold closure panics mid-run,
/// `Drop` appends whatever already folded during unwinding — the front
/// holds those records, so losing their frames would make a later reopen
/// silently revert them (the replay-matches-front invariant). The
/// unwind-path append on the shared paths happens after the lane lock is
/// gone, so its ordering guarantee is only best-effort — acceptable for
/// what is by definition a bug in the fold path
/// (`TrustError::WorkerPanicked`), where the batch is already documented
/// as partially folded.
///
/// Holds the journal mutex (not the whole backend) so the exclusive
/// paths can borrow it alongside `&mut front`.
struct RunFrames<'a, P: LogKey> {
    journal: &'a Mutex<Journal<P>>,
    buf: Vec<u8>,
    frames: u64,
}

impl<'a, P: LogKey> RunFrames<'a, P> {
    fn new(journal: &'a Mutex<Journal<P>>, run_len: usize) -> Self {
        RunFrames { journal, buf: Vec::with_capacity((run_len * 64).min(BUFFER_SPILL)), frames: 0 }
    }

    fn push(&mut self, peer: P, task: TaskId, rec: TrustRecord) {
        encode_frame(&mut self.buf, &Frame::PutRecord { peer, task, rec });
        self.frames += 1;
    }

    fn append_now(&mut self) {
        if !self.buf.is_empty() {
            self.journal
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .append_encoded(&self.buf, self.frames);
            self.buf.clear();
            self.frames = 0;
        }
    }
}

impl<P: LogKey> Drop for RunFrames<'_, P> {
    fn drop(&mut self) {
        self.append_now();
    }
}

impl<P: LogKey + Hash + Send + Sync + fmt::Debug> WriteBehind<P> {
    /// Folds one pre-routed lane run, journaling the whole run with **one**
    /// journal-mutex acquisition: frames are encoded into a run-local
    /// buffer as records fold, and the buffered append happens on the
    /// run's last fold — still inside the front's lane lock, so a later
    /// writer to this lane (and therefore to any of its keys) can only
    /// append *after* this run. Per-key journal order = fold order, at a
    /// per-run instead of per-record mutex cost. A panicking fold closure
    /// still journals the records that folded before it (see
    /// [`RunFrames`]).
    fn journaled_lane_run(
        &self,
        lane: usize,
        indices: &[usize],
        key_of: &dyn Fn(usize) -> (P, TaskId),
        f: &mut dyn FnMut(usize, Option<TrustRecord>) -> TrustRecord,
    ) {
        let mut run = RunFrames::new(&self.journal, indices.len());
        let mut left = indices.len();
        self.front.update_lane_run_shared(lane, indices, key_of, &mut |i, prior| {
            let rec = f(i, prior);
            let (peer, task) = key_of(i);
            run.push(peer, task, rec);
            left -= 1;
            if left == 0 {
                run.append_now();
            }
            rec
        });
    }
}

impl<P: LogKey + Hash + fmt::Debug> WriteBehind<P> {
    /// Opens (or creates) a durable write-behind backend in `dir` with the
    /// default sharded front and options.
    pub fn open(dir: impl AsRef<Path>) -> Result<Self, TrustError> {
        Self::open_with(dir, LogOptions::default(), ShardedBackend::default())
    }

    /// [`Self::open`] with explicit options and a pre-sized front (e.g.
    /// [`ShardedBackend::with_shards_for_writers`] when pairing with a
    /// pool). Recovered records are loaded into the front.
    pub fn open_with(
        dir: impl AsRef<Path>,
        options: LogOptions,
        mut front: ShardedBackend<P>,
    ) -> Result<Self, TrustError> {
        let (journal, recovered) = Journal::open(dir.as_ref(), options)?;
        for ((peer, task), rec) in recovered {
            front.insert(peer, task, rec);
        }
        Ok(WriteBehind { front, journal: Mutex::new(journal) })
    }

    /// Whether this backend persists to disk.
    pub fn is_durable(&self) -> bool {
        self.lock().is_durable()
    }

    /// Pushes buffered frames down (fsync per policy) through a shared
    /// handle and surfaces any sticky append failure.
    pub fn flush(&self) -> Result<(), TrustError> {
        self.lock().flush()
    }

    /// [`Self::flush`] with the fsync forced regardless of policy.
    pub fn sync(&self) -> Result<(), TrustError> {
        self.lock().sync()
    }

    /// Frames appended since the last compaction.
    pub fn frames_since_compaction(&self) -> u64 {
        self.lock().frames_since_compact
    }

    /// Rewrites the full front state as an atomic snapshot and truncates
    /// the log. Exclusive access guarantees the snapshot is consistent.
    pub fn compact(&mut self) -> Result<(), TrustError> {
        let mut records: Vec<(P, TaskId, TrustRecord)> = Vec::with_capacity(self.front.len());
        for peer in self.front.known_peers() {
            self.front.for_each_experience(peer, &mut |task, rec| records.push((peer, task, rec)));
        }
        self.journal.get_mut().unwrap_or_else(|e| e.into_inner()).compact_from(records.into_iter())
    }

    /// `compact_every` auto-trigger for the exclusive (`&mut`) write paths.
    /// The shared-handle paths cannot compact (a consistent snapshot needs
    /// exclusive access), so a purely shared writer checks the threshold
    /// whenever it regains `&mut` — or compacts explicitly.
    fn after_write_mut(&mut self) {
        let journal = self.journal.get_mut().unwrap_or_else(|e| e.into_inner());
        let every = journal.options.compact_every;
        if every > 0 && journal.frames_since_compact >= every {
            if let Err(e) = self.compact() {
                // sticky; the next flush/sync surfaces it
                self.journal.get_mut().unwrap_or_else(|p| p.into_inner()).fail(e.to_string());
            }
        }
    }
}

impl<P: LogKey + Hash> Clone for WriteBehind<P> {
    /// Like [`LogBackend`]: the clone keeps the front's state but detaches
    /// from the file.
    fn clone(&self) -> Self {
        WriteBehind { front: self.front.clone(), journal: Mutex::new(self.lock().clone()) }
    }
}

impl<P: LogKey + Hash + fmt::Debug> fmt::Debug for WriteBehind<P> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("WriteBehind")
            .field("front", &self.front)
            .field("journal", &*self.lock())
            .finish()
    }
}

impl<P: LogKey + Hash + fmt::Debug> TrustBackend<P> for WriteBehind<P> {
    fn get(&self, peer: P, task: TaskId) -> Option<TrustRecord> {
        self.front.get(peer, task)
    }

    fn insert(&mut self, peer: P, task: TaskId, rec: TrustRecord) {
        self.front.insert(peer, task, rec);
        self.journal.get_mut().unwrap_or_else(|e| e.into_inner()).append_record(peer, task, rec);
        self.after_write_mut();
    }

    fn update(
        &mut self,
        peer: P,
        task: TaskId,
        f: &mut dyn FnMut(Option<TrustRecord>) -> TrustRecord,
    ) {
        let journal = self.journal.get_mut().unwrap_or_else(|e| e.into_inner());
        self.front.update(peer, task, &mut |prior| {
            let rec = f(prior);
            journal.append_record(peer, task, rec);
            rec
        });
        self.after_write_mut();
    }

    fn update_batch(
        &mut self,
        items: &[(P, TaskId)],
        f: &mut dyn FnMut(usize, Option<TrustRecord>) -> TrustRecord,
    ) {
        if items.is_empty() {
            return;
        }
        // encode the whole batch locally, append once (on the guard's
        // drop): exclusive access means no concurrent writer can
        // interleave frames, so appending after the folds preserves
        // per-key journal order — and the drop-guard keeps a panicking
        // fold from losing the frames of records already in the front
        let mut run = RunFrames::new(&self.journal, items.len());
        self.front.update_batch(items, &mut |i, prior| {
            let rec = f(i, prior);
            let (peer, task) = items[i];
            run.push(peer, task, rec);
            rec
        });
        drop(run);
        self.after_write_mut();
    }

    fn for_each_experience(&self, peer: P, f: &mut dyn FnMut(TaskId, TrustRecord)) {
        self.front.for_each_experience(peer, f);
    }

    fn known_peers(&self) -> Vec<P> {
        self.front.known_peers()
    }

    fn len(&self) -> usize {
        self.front.len()
    }

    fn clear(&mut self) {
        self.front.clear();
        self.journal.get_mut().unwrap_or_else(|e| e.into_inner()).append(&Frame::ClearRecords);
        self.after_write_mut();
    }

    fn note_usage_log(&mut self, peer: P, log: UsageLog) {
        self.journal.get_mut().unwrap_or_else(|e| e.into_inner()).note_usage(peer, log);
        self.after_write_mut();
    }

    fn recovered_usage_logs(&self) -> Vec<(P, UsageLog)> {
        self.lock().usage.iter().map(|(&p, &l)| (p, l)).collect()
    }

    fn flush(&mut self) -> Result<(), TrustError> {
        WriteBehind::flush(self)
    }
}

impl<P: LogKey + Hash + Send + Sync + fmt::Debug> ConcurrentTrustBackend<P> for WriteBehind<P> {
    fn get_shared(&self, peer: P, task: TaskId) -> Option<TrustRecord> {
        self.front.get_shared(peer, task)
    }

    fn update_shared(
        &self,
        peer: P,
        task: TaskId,
        f: &mut dyn FnMut(Option<TrustRecord>) -> TrustRecord,
    ) {
        // journal locked *inside* the fold (under the front's lane lock):
        // lane → journal everywhere, and per-key frame order = fold order
        self.front.update_shared(peer, task, &mut |prior| {
            let rec = f(prior);
            self.lock().append_record(peer, task, rec);
            rec
        });
    }

    fn update_batch_shared(
        &self,
        items: &[(P, TaskId)],
        f: &mut dyn FnMut(usize, Option<TrustRecord>) -> TrustRecord,
    ) {
        // route by lane here (one hash per element, like the front would)
        // so each lane's slice journals as one buffered append
        let mut runs: Vec<Vec<usize>> = vec![Vec::new(); self.front.write_lanes()];
        for (i, &(peer, _)) in items.iter().enumerate() {
            runs[self.front.lane_of(peer)].push(i);
        }
        for (lane, indices) in runs.iter().enumerate() {
            if !indices.is_empty() {
                self.journaled_lane_run(lane, indices, &|i| items[i], f);
            }
        }
    }

    fn write_lanes(&self) -> usize {
        self.front.write_lanes()
    }

    fn lane_of(&self, peer: P) -> usize {
        self.front.lane_of(peer)
    }

    fn update_lane_run_shared(
        &self,
        lane: usize,
        indices: &[usize],
        key_of: &dyn Fn(usize) -> (P, TaskId),
        f: &mut dyn FnMut(usize, Option<TrustRecord>) -> TrustRecord,
    ) {
        self.journaled_lane_run(lane, indices, key_of, f);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(s: f64) -> TrustRecord {
        TrustRecord::with_priors(s, 0.5, 0.25, 0.125)
    }

    fn tmpdir(tag: &str) -> PathBuf {
        use std::sync::atomic::{AtomicU64, Ordering};
        static NEXT: AtomicU64 = AtomicU64::new(0);
        let dir = std::env::temp_dir().join(format!(
            "siot-log-{tag}-{}-{}",
            std::process::id(),
            NEXT.fetch_add(1, Ordering::Relaxed)
        ));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn frames_round_trip() {
        let mut buf = Vec::new();
        let frames: Vec<Frame<u32>> = vec![
            Frame::PutRecord { peer: 7, task: TaskId(3), rec: rec(0.75) },
            Frame::PutUsage { peer: 9, log: UsageLog { responsive: 4, abusive: 1 } },
            Frame::ClearRecords,
        ];
        for f in &frames {
            encode_frame(&mut buf, f);
        }
        let mut off = 0;
        let mut seen = 0;
        loop {
            match read_frame::<u32>(&buf, off) {
                FrameRead::End => break,
                FrameRead::Frame(frame, next) => {
                    match (seen, frame) {
                        (0, Frame::PutRecord { peer, task, rec: r }) => {
                            assert_eq!((peer, task), (7, TaskId(3)));
                            assert_eq!(r, rec(0.75));
                        }
                        (1, Frame::PutUsage { peer, log }) => {
                            assert_eq!(peer, 9);
                            assert_eq!(log, UsageLog { responsive: 4, abusive: 1 });
                        }
                        (2, Frame::ClearRecords) => {}
                        _ => panic!("unexpected frame #{seen}"),
                    }
                    seen += 1;
                    off = next;
                }
                FrameRead::Invalid => panic!("clean buffer must replay"),
            }
        }
        assert_eq!(seen, 3);
    }

    #[test]
    fn ephemeral_backend_matches_contract() {
        // same exercise the other backends run in backend.rs
        let mut b = LogBackend::<u32>::default();
        assert!(b.is_empty());
        assert!(!b.is_durable());
        b.insert(7, TaskId(1), rec(0.5));
        b.insert(3, TaskId(0), rec(0.25));
        b.insert(7, TaskId(0), rec(0.75));
        assert_eq!(b.len(), 3);
        b.update(7, TaskId(1), &mut |prior| {
            let mut r = prior.expect("existing");
            r.s_hat = 0.9;
            r
        });
        assert_eq!(b.get(7, TaskId(1)).unwrap().s_hat, 0.9);
        let mut seen = Vec::new();
        b.for_each_experience(7, &mut |tid, r| seen.push((tid, r.s_hat)));
        assert_eq!(seen, vec![(TaskId(0), 0.75), (TaskId(1), 0.9)]);
        assert_eq!(b.known_peers(), vec![3, 7]);
        b.clear();
        assert!(b.is_empty());
        assert!(b.flush().is_ok());
    }

    #[test]
    fn reopen_recovers_records_and_usage() {
        let dir = tmpdir("reopen");
        {
            let mut b = LogBackend::<u32>::open(&dir).unwrap();
            assert!(b.is_durable());
            assert_eq!(b.dir(), Some(dir.as_path()));
            b.insert(1, TaskId(0), rec(0.5));
            b.update(1, TaskId(0), &mut |p| {
                let mut r = p.unwrap();
                r.interactions += 1;
                r
            });
            b.insert(2, TaskId(3), rec(1.0));
            b.note_usage_log(2, UsageLog { responsive: 5, abusive: 2 });
            // dropped without flush: the journal flushes on drop
        }
        let b = LogBackend::<u32>::open(&dir).unwrap();
        assert_eq!(b.len(), 2);
        assert_eq!(b.get(1, TaskId(0)).unwrap().interactions, 1);
        assert_eq!(b.get(2, TaskId(3)).unwrap(), rec(1.0));
        assert_eq!(b.recovered_usage_logs(), vec![(2, UsageLog { responsive: 5, abusive: 2 })]);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn compaction_truncates_log_and_survives_reopen() {
        let dir = tmpdir("compact");
        {
            let mut b = LogBackend::<u32>::open(&dir).unwrap();
            for i in 0..50u32 {
                b.insert(i, TaskId(0), rec(0.5));
            }
            b.note_usage_log(3, UsageLog { responsive: 1, abusive: 0 });
            assert!(b.frames_since_compaction() >= 51);
            b.compact().unwrap();
            assert_eq!(b.frames_since_compaction(), 0);
            b.insert(99, TaskId(1), rec(0.25)); // post-snapshot tail frame
        }
        // the log holds only the tail; the snapshot holds the rest
        let log_len = fs::metadata(dir.join(LOG_FILE)).unwrap().len();
        assert!(log_len < 100, "compacted log holds one frame, got {log_len} bytes");
        assert!(dir.join(SNAP_FILE).exists());
        let b = LogBackend::<u32>::open(&dir).unwrap();
        assert_eq!(b.len(), 51);
        assert_eq!(b.get(99, TaskId(1)).unwrap(), rec(0.25));
        assert_eq!(b.recovered_usage_logs().len(), 1);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn auto_compaction_fires_on_threshold() {
        let dir = tmpdir("autocompact");
        let opts = LogOptions { compact_every: 16, ..LogOptions::default() };
        let mut b = LogBackend::<u32>::open_with(&dir, opts).unwrap();
        for i in 0..40u32 {
            b.insert(i, TaskId(0), rec(0.5));
        }
        assert!(b.frames_since_compaction() < 16, "threshold keeps the log short");
        assert!(dir.join(SNAP_FILE).exists());
        drop(b);
        let b = LogBackend::<u32>::open(&dir).unwrap();
        assert_eq!(b.len(), 40);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn clone_detaches_from_the_file() {
        let dir = tmpdir("clone");
        let mut a = LogBackend::<u32>::open(&dir).unwrap();
        a.insert(1, TaskId(0), rec(0.5));
        let mut c = a.clone();
        assert!(!c.is_durable());
        c.insert(2, TaskId(0), rec(0.75)); // journals nowhere
        assert_eq!(c.len(), 2);
        drop(a);
        let reopened = LogBackend::<u32>::open(&dir).unwrap();
        assert_eq!(reopened.len(), 1, "the clone's writes never reach the file");
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn fsync_policies_all_reach_disk() {
        for policy in [FsyncPolicy::Never, FsyncPolicy::OnFlush, FsyncPolicy::Always] {
            let dir = tmpdir("fsync");
            let opts = LogOptions { fsync: policy, ..LogOptions::default() };
            let mut b = LogBackend::<u32>::open_with(&dir, opts).unwrap();
            b.insert(1, TaskId(0), rec(0.5));
            b.flush().unwrap();
            drop(b);
            let b = LogBackend::<u32>::open(&dir).unwrap();
            assert_eq!(b.len(), 1, "policy {policy:?}");
            fs::remove_dir_all(&dir).unwrap();
        }
    }

    #[test]
    fn write_behind_journals_all_write_paths() {
        let dir = tmpdir("wb");
        {
            let mut wb = WriteBehind::<u32>::open(&dir).unwrap();
            wb.insert(1, TaskId(0), rec(0.5));
            wb.update(1, TaskId(0), &mut |p| {
                let mut r = p.unwrap();
                r.interactions += 1;
                r
            });
            wb.update_batch(&[(2, TaskId(0)), (3, TaskId(1))], &mut |_, _| rec(0.25));
            wb.update_shared(4, TaskId(2), &mut |_| rec(0.75));
            wb.update_batch_shared(&[(5, TaskId(0))], &mut |_, _| rec(1.0));
            let indices = [0usize];
            let items = [(6u32, TaskId(1))];
            let lane = wb.lane_of(6);
            wb.update_lane_run_shared(lane, &indices, &|i| items[i], &mut |_, _| rec(0.0));
            wb.note_usage_log(1, UsageLog { responsive: 2, abusive: 0 });
            wb.flush().unwrap();
        }
        let wb = WriteBehind::<u32>::open(&dir).unwrap();
        assert_eq!(wb.len(), 6);
        assert_eq!(wb.get(1, TaskId(0)).unwrap().interactions, 1);
        assert_eq!(wb.get(4, TaskId(2)).unwrap(), rec(0.75));
        assert_eq!(wb.get(6, TaskId(1)).unwrap(), rec(0.0));
        assert_eq!(wb.recovered_usage_logs(), vec![(1, UsageLog { responsive: 2, abusive: 0 })]);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn write_behind_concurrent_writers_recover_exactly() {
        let dir = tmpdir("wb-threads");
        {
            let wb = WriteBehind::<u32>::open(&dir).unwrap();
            std::thread::scope(|scope| {
                for t in 0..4u32 {
                    let b = &wb;
                    scope.spawn(move || {
                        for i in 0..250u32 {
                            b.update_shared(t * 1000 + i, TaskId(0), &mut |_| rec(0.5));
                        }
                    });
                }
            });
            assert_eq!(wb.len(), 1000);
            wb.sync().unwrap();
        }
        let wb = WriteBehind::<u32>::open(&dir).unwrap();
        assert_eq!(wb.len(), 1000);
        assert_eq!(wb.known_peers().len(), 1000);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn write_behind_batched_shared_folds_recover_final_state() {
        // Overlapping keys hammered by concurrent *batched* folds: the
        // per-lane-run buffered journal appends must still produce a log
        // whose per-key frame order matches fold order, so replay lands on
        // exactly the front's final state (a regression here would show up
        // as a reopened record older than the in-memory one).
        let dir = tmpdir("wb-lane-batch");
        let expected: Vec<(u32, TrustRecord)>;
        {
            let wb = WriteBehind::<u32>::open(&dir).unwrap();
            std::thread::scope(|scope| {
                for t in 0..4u64 {
                    let b = &wb;
                    scope.spawn(move || {
                        let items: Vec<(u32, TaskId)> =
                            (0..32u32).map(|p| (p, TaskId(0))).collect();
                        for round in 0..50u64 {
                            b.update_batch_shared(&items, &mut |i, prior| match prior {
                                Some(mut r) => {
                                    r.interactions += 1;
                                    // thread- and round-dependent payload so
                                    // a stale frame is detectable bit-wise
                                    r.s_hat = ((t * 50 + round) as f64 + i as f64 / 32.0) / 256.0;
                                    r
                                }
                                None => rec(0.5),
                            });
                        }
                    });
                }
            });
            expected = (0..32u32).map(|p| (p, wb.get(p, TaskId(0)).expect("folded"))).collect();
            wb.flush().unwrap();
        }
        let reopened = WriteBehind::<u32>::open(&dir).unwrap();
        assert_eq!(reopened.len(), 32);
        for &(p, rec) in &expected {
            assert_eq!(reopened.get(p, TaskId(0)), Some(rec), "peer {p}");
        }
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn panicking_fold_mid_run_still_journals_earlier_folds() {
        // A fold closure that panics mid-run (TrustError::WorkerPanicked
        // territory) must not leave records that *did* fold — and are in
        // the front — without journal frames, or reopen would silently
        // revert them.
        let dir = tmpdir("wb-panic");
        {
            let wb = WriteBehind::<u32>::open(&dir).unwrap();
            // three peers sharing one lane, so they form a single run
            let lane = wb.lane_of(0);
            let peers: Vec<u32> = (0..1000u32).filter(|&p| wb.lane_of(p) == lane).take(3).collect();
            assert_eq!(peers.len(), 3);
            let items: Vec<(u32, TaskId)> = peers.iter().map(|&p| (p, TaskId(0))).collect();
            let unwound = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                wb.update_lane_run_shared(lane, &[0, 1, 2], &|i| items[i], &mut |i, _| {
                    if i == 2 {
                        panic!("injected fold bug");
                    }
                    rec(0.25)
                });
            }));
            assert!(unwound.is_err());
            // the front holds exactly the two completed folds…
            assert_eq!(wb.len(), 2);
            wb.flush().unwrap();
        }
        // …and so does the reopened journal: replay matches the front
        let reopened = WriteBehind::<u32>::open(&dir).unwrap();
        assert_eq!(reopened.len(), 2);
        let lane = reopened.lane_of(0);
        let peers: Vec<u32> =
            (0..1000u32).filter(|&p| reopened.lane_of(p) == lane).take(3).collect();
        assert_eq!(reopened.get(peers[0], TaskId(0)), Some(rec(0.25)));
        assert_eq!(reopened.get(peers[1], TaskId(0)), Some(rec(0.25)));
        assert_eq!(reopened.get(peers[2], TaskId(0)), None, "the panicking fold stored nothing");
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn panicking_fold_mid_exclusive_batch_still_journals_earlier_folds() {
        // same invariant as the shared-path test, for `&mut update_batch`:
        // whatever the front holds after the unwind must replay on reopen
        let dir = tmpdir("wb-panic-mut");
        let items: Vec<(u32, TaskId)> = (0..4u32).map(|p| (p, TaskId(0))).collect();
        let front_state: Vec<Option<TrustRecord>>;
        {
            let mut wb = WriteBehind::<u32>::open(&dir).unwrap();
            let unwound = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                wb.update_batch(&items, &mut |i, _| {
                    if i == 3 {
                        panic!("injected fold bug");
                    }
                    rec(0.5)
                });
            }));
            assert!(unwound.is_err());
            front_state = items.iter().map(|&(p, t)| wb.get(p, t)).collect();
            assert!(front_state.iter().flatten().count() >= 1, "some records folded");
            wb.flush().unwrap();
        }
        let reopened = WriteBehind::<u32>::open(&dir).unwrap();
        for (&(p, t), expected) in items.iter().zip(&front_state) {
            assert_eq!(reopened.get(p, t), *expected, "peer {p}");
        }
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn write_behind_compaction_consistent() {
        let dir = tmpdir("wb-compact");
        {
            let mut wb = WriteBehind::<u32>::open(&dir).unwrap();
            for i in 0..100u32 {
                wb.update(i, TaskId(0), &mut |_| rec(0.5));
            }
            wb.compact().unwrap();
            wb.update(200, TaskId(0), &mut |_| rec(0.25));
        }
        let wb = WriteBehind::<u32>::open(&dir).unwrap();
        assert_eq!(wb.len(), 101);
        assert_eq!(wb.get(200, TaskId(0)).unwrap(), rec(0.25));
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn wrong_magic_is_corrupt_not_clobbered() {
        let dir = tmpdir("magic");
        fs::create_dir_all(&dir).unwrap();
        fs::write(dir.join(LOG_FILE), b"NOTSIOTFILE!").unwrap();
        let err = LogBackend::<u32>::open(&dir).unwrap_err();
        assert!(matches!(err, TrustError::Corrupt { what: "log header", .. }));
        // the foreign file is untouched
        assert_eq!(fs::read(dir.join(LOG_FILE)).unwrap(), b"NOTSIOTFILE!");
        fs::remove_dir_all(&dir).unwrap();
    }
}
