//! Decision arithmetic of §4.4: candidate scoring (Eq. 23) and the
//! delegate-or-do-it-yourself comparison (Eq. 24).

use crate::record::TrustRecord;

/// Eq. 23 objective for one candidate: expected net profit
/// `Ŝ·Ĝ − (1−Ŝ)·D̂ − Ĉ`.
pub fn net_profit(record: &TrustRecord) -> f64 {
    record.expected_net_profit()
}

/// Picks the candidate with the largest expected net profit (Eq. 23).
///
/// Returns the index of the winner, or `None` for an empty slate. Ties go
/// to the earliest candidate, which keeps selection deterministic.
pub fn select_best<'a, I>(candidates: I) -> Option<usize>
where
    I: IntoIterator<Item = &'a TrustRecord>,
{
    let mut best: Option<(usize, f64)> = None;
    for (i, rec) in candidates.into_iter().enumerate() {
        let p = rec.expected_net_profit();
        match best {
            Some((_, bp)) if bp >= p => {}
            _ => best = Some((i, p)),
        }
    }
    best.map(|(i, _)| i)
}

/// Eq. 24: the trustor delegates to the trustee rather than doing the task
/// itself iff the trustee's expected net profit strictly exceeds its own.
pub fn prefers_delegation(to_trustee: &TrustRecord, to_self: &TrustRecord) -> bool {
    to_trustee.expected_net_profit() > to_self.expected_net_profit()
}

/// What an entrusted agent decides to do with a request (§4.4: *"he can
/// either complete the task or recommend and delegate to other agents"*).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TrusteeDecision {
    /// Execute the task itself.
    Execute,
    /// Sub-delegate to the candidate at this index.
    Redelegate(usize),
}

/// The entrusted agent's own decision: execute, or pass the task on to
/// whichever sub-contractor nets it more profit (the Eq. 24 comparison
/// applied from the trustee's seat).
pub fn trustee_decision(
    own_execution: &TrustRecord,
    subcontractors: &[TrustRecord],
) -> TrusteeDecision {
    match select_best(subcontractors) {
        Some(i) if prefers_delegation(&subcontractors[i], own_execution) => {
            TrusteeDecision::Redelegate(i)
        }
        _ => TrusteeDecision::Execute,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(s: f64, g: f64, d: f64, c: f64) -> TrustRecord {
        TrustRecord::with_priors(s, g, d, c)
    }

    #[test]
    fn net_profit_formula() {
        let r = rec(0.8, 0.9, 0.4, 0.1);
        let expected = 0.8 * 0.9 - 0.2 * 0.4 - 0.1;
        assert!((net_profit(&r) - expected).abs() < 1e-12);
    }

    #[test]
    fn select_best_prefers_profit_not_success_rate() {
        // Candidate 0 always succeeds but costs more than it gains;
        // candidate 1 sometimes fails but nets positive.
        let c0 = rec(1.0, 0.2, 0.0, 0.5);
        let c1 = rec(0.7, 0.9, 0.2, 0.1);
        assert_eq!(select_best([&c0, &c1]), Some(1));
    }

    #[test]
    fn select_best_empty_and_ties() {
        assert_eq!(select_best([]), None);
        let a = rec(0.5, 0.5, 0.5, 0.5);
        let b = rec(0.5, 0.5, 0.5, 0.5);
        assert_eq!(select_best([&a, &b]), Some(0), "ties break to the first");
    }

    #[test]
    fn delegation_preference_is_strict() {
        let better = rec(0.9, 0.9, 0.1, 0.1);
        let worse = rec(0.5, 0.5, 0.5, 0.5);
        assert!(prefers_delegation(&better, &worse));
        assert!(!prefers_delegation(&worse, &better));
        assert!(!prefers_delegation(&worse, &worse), "equal profit means do it yourself");
    }

    #[test]
    fn trustee_redelegates_when_profitable() {
        let own = rec(0.6, 0.5, 0.3, 0.2); // profit 0.6·0.5−0.4·0.3−0.2 = −0.02
        let subs = [rec(0.9, 0.8, 0.1, 0.1), rec(0.2, 0.2, 0.8, 0.5)];
        assert_eq!(trustee_decision(&own, &subs), TrusteeDecision::Redelegate(0));
        // no subcontractor: execute
        assert_eq!(trustee_decision(&own, &[]), TrusteeDecision::Execute);
        // subcontractors all worse: execute
        let strong_self = rec(1.0, 1.0, 0.0, 0.0);
        assert_eq!(trustee_decision(&strong_self, &subs), TrusteeDecision::Execute);
    }

    #[test]
    fn capable_self_can_still_delegate() {
        // Paper §4.4: even an agent able to do the job delegates when the
        // trustee nets more profit.
        let to_self = rec(1.0, 0.6, 0.0, 0.4); // profit 0.2
        let to_trustee = rec(0.9, 0.8, 0.1, 0.2); // profit 0.9*0.8-0.1*0.1-0.2 = 0.51
        assert!(prefers_delegation(&to_trustee, &to_self));
    }
}
