//! Integration tests for the wire tier (`service::remote`): loopback
//! equivalence against the in-process service tiers, adversarial-input
//! robustness of the server, and typed failure on either end of a dying
//! connection.

use std::io::{Read, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};

use proptest::prelude::*;
use siot_core::backend::TrustBackend;
use siot_core::environment::EnvIndicator;
use siot_core::framing::StreamDecoder;
use siot_core::log_backend::{LogBackend, WriteBehind};
use siot_core::prelude::*;
use siot_core::service::block_on;

mod common;
use common::tmpdir;

/// One commit a worker plays: (trustee-in-worker-range, observation,
/// abusive flag, environment).
type Step = (u32, Observation, u32, f64);

fn unit() -> impl Strategy<Value = f64> {
    0.0..=1.0f64
}

fn observation() -> impl Strategy<Value = Observation> {
    (unit(), unit(), unit(), unit()).prop_map(|(s, g, d, c)| Observation {
        success_rate: s,
        gain: g,
        damage: d,
        cost: c,
    })
}

/// Three workers' commit streams with disjoint peer key spaces, so any
/// interleaving must land on the same per-key state as a sequential fold.
fn streams() -> impl Strategy<Value = Vec<Vec<Step>>> {
    prop::collection::vec(
        prop::collection::vec((0u32..5, observation(), 0u32..2, 0.05..=1.0f64), 1..25),
        3..4,
    )
}

fn task() -> Task {
    Task::uniform(TaskId(0), [CharacteristicId(0)]).expect("non-empty task")
}

fn completed(worker: usize, step: &Step) -> CompletedDelegation<u32> {
    let &(trustee, ref obs, abusive, env) = step;
    let t = task();
    let scratch: TrustStore<u32> = TrustStore::new();
    let request = DelegationRequest::new(
        worker as u32 * 100 + trustee,
        &t,
        Goal::ANY,
        Context::new(t.id(), EnvIndicator::new(env).expect("generated in (0, 1]")),
    );
    let outcome = DelegationOutcome::observed(*obs);
    let outcome = if abusive == 1 { outcome.abusive() } else { outcome };
    request.committed().activate(&scratch).finish(outcome).expect("generated in-range")
}

/// Plays every worker stream through its **own TCP connection** to a
/// server fronting a sharded fleet (pipelined submits, receipts awaited
/// at the end) and returns the per-shard engines the local shutdown
/// hands back.
fn run_remote_sharded<B, F>(
    shards: usize,
    make_engine: F,
    streams: &[Vec<Step>],
) -> Vec<TrustEngine<u32, B>>
where
    B: TrustBackend<u32> + Send + 'static,
    F: FnMut(usize) -> TrustEngine<u32, B>,
{
    let service = ShardedTrustService::spawn_sharded(
        shards,
        ServiceOptions { mailbox: 8, ..ServiceOptions::default() },
        make_engine,
    );
    let server =
        RemoteTrustServer::bind(("127.0.0.1", 0), service.handle()).expect("loopback bind");
    let addr = server.local_addr();
    std::thread::scope(|scope| {
        for (worker, stream) in streams.iter().enumerate() {
            scope.spawn(move || {
                let remote: RemoteTrustServiceHandle<u32> =
                    RemoteTrustServiceHandle::connect(addr).expect("loopback connect");
                let pending: Vec<_> =
                    stream.iter().map(|step| remote.submit(completed(worker, step))).collect();
                for p in pending {
                    block_on(p).expect("service alive until every worker finished");
                }
            });
        }
    });
    server.shutdown();
    service.shutdown().expect("clean shutdown")
}

/// The same streams through one connection's `submit_batch`.
fn run_remote_batched(streams: &[Vec<Step>]) -> Vec<TrustStore<u32>> {
    let service = ShardedTrustService::spawn_sharded(
        3,
        ServiceOptions { mailbox: 8, ..ServiceOptions::default() },
        |_| TrustStore::<u32>::new(),
    );
    let server =
        RemoteTrustServer::bind(("127.0.0.1", 0), service.handle()).expect("loopback bind");
    let remote: RemoteTrustServiceHandle<u32> =
        RemoteTrustServiceHandle::connect(server.local_addr()).expect("loopback connect");
    for (worker, stream) in streams.iter().enumerate() {
        let batch: Vec<_> = stream.iter().map(|step| completed(worker, step)).collect();
        let receipts = block_on(remote.submit_batch(batch)).expect("batch commits");
        assert_eq!(receipts.len(), stream.len());
    }
    server.shutdown();
    service.shutdown().expect("clean shutdown")
}

/// The in-process reference: the same streams through a local sharded
/// handle.
fn run_local_sharded(shards: usize, streams: &[Vec<Step>]) -> Vec<TrustStore<u32>> {
    let service = ShardedTrustService::spawn_sharded(
        shards,
        ServiceOptions { mailbox: 8, ..ServiceOptions::default() },
        |_| TrustStore::<u32>::new(),
    );
    std::thread::scope(|scope| {
        for (worker, stream) in streams.iter().enumerate() {
            let handle = service.handle();
            scope.spawn(move || {
                let pending: Vec<_> =
                    stream.iter().map(|step| handle.submit(completed(worker, step))).collect();
                for p in pending {
                    block_on(p).expect("shards alive");
                }
            });
        }
    });
    service.shutdown().expect("clean shutdown")
}

/// The sequential reference: the same commits via `commit_batch`.
fn run_sequential(streams: &[Vec<Step>]) -> TrustStore<u32> {
    let mut engine: TrustStore<u32> = TrustStore::new();
    for (worker, stream) in streams.iter().enumerate() {
        let batch: Vec<_> = stream.iter().map(|step| completed(worker, step)).collect();
        engine.commit_batch(batch, &ServiceOptions::default().betas);
    }
    engine
}

/// The fleet, merged, is bit-identical to the reference.
fn shards_bit_identical<A: TrustBackend<u32>, B: TrustBackend<u32>>(
    shards: &[TrustEngine<u32, A>],
    reference: &TrustEngine<u32, B>,
) -> Result<(), TestCaseError> {
    let mut peers: Vec<u32> = shards.iter().flat_map(|e| e.known_peers()).collect();
    peers.sort_unstable();
    prop_assert_eq!(peers, reference.known_peers());
    for shard in shards {
        for peer in shard.known_peers() {
            prop_assert_eq!(shard.usage_log(peer), reference.usage_log(peer));
            let (a, b) = (shard.record(peer, TaskId(0)), reference.record(peer, TaskId(0)));
            prop_assert_eq!(a.is_some(), b.is_some());
            if let (Some(ra), Some(rb)) = (a, b) {
                prop_assert_eq!(ra.s_hat.to_bits(), rb.s_hat.to_bits());
                prop_assert_eq!(ra.g_hat.to_bits(), rb.g_hat.to_bits());
                prop_assert_eq!(ra.d_hat.to_bits(), rb.d_hat.to_bits());
                prop_assert_eq!(ra.c_hat.to_bits(), rb.c_hat.to_bits());
                prop_assert_eq!(ra.interactions, rb.interactions);
            }
        }
    }
    Ok(())
}

proptest! {
    // every case spawns a server + sharded fleet + three connections
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Commits through remote handles are bit-identical to the in-process
    /// sharded handle and to the sequential fold — per-session submits and
    /// vectored `submit_batch` alike.
    #[test]
    fn remote_commits_match_local_and_sequential(
        streams in streams(),
        shards in 1usize..=3,
    ) {
        let over_wire = run_remote_sharded(shards, |_| TrustStore::<u32>::new(), &streams);
        prop_assert_eq!(over_wire.len(), shards);
        let local = run_local_sharded(shards, &streams);
        let sequential = run_sequential(&streams);
        // same routing hash on both sides: shard i over the wire must hold
        // exactly what shard i holds in-process
        for (wire_shard, local_shard) in over_wire.iter().zip(&local) {
            shards_bit_identical(std::slice::from_ref(wire_shard), local_shard)?;
        }
        shards_bit_identical(&over_wire, &sequential)?;
        let batched = run_remote_batched(&streams);
        shards_bit_identical(&batched, &sequential)?;
    }

    /// The same equivalence over durable `WriteBehind` shards — and each
    /// reopened shard directory replays to the exact state its actor held
    /// when the remote clients finished.
    #[test]
    fn remote_commits_durable_and_reopen(streams in streams()) {
        let shards = 2usize;
        let root = tmpdir("remote-service-wb");
        let over_wire = run_remote_sharded(
            shards,
            |shard| {
                let dir = TrustEngine::<u32, LogBackend<u32>>::shard_dir(&root, shard);
                TrustEngine::with_backend(WriteBehind::open(dir).expect("shard dir opens"))
            },
            &streams,
        );
        let sequential = run_sequential(&streams);
        shards_bit_identical(&over_wire, &sequential)?;

        drop(over_wire);
        let reopened: Vec<TrustEngine<u32, WriteBehind<u32>>> = (0..shards)
            .map(|shard| {
                let dir = TrustEngine::<u32, LogBackend<u32>>::shard_dir(&root, shard);
                TrustEngine::with_backend(WriteBehind::open(dir).expect("shard dir reopens"))
            })
            .collect();
        shards_bit_identical(&reopened, &sequential)?;
        drop(reopened);
        std::fs::remove_dir_all(&root).expect("scratch removable");
    }
}

/// Spawns a 2-shard fleet behind a server; returns (service, server).
fn serve_fleet() -> (ShardedTrustService<u32>, RemoteTrustServer) {
    let service = ShardedTrustService::spawn_sharded(2, ServiceOptions::default(), |_| {
        TrustStore::<u32>::new()
    });
    let server =
        RemoteTrustServer::bind(("127.0.0.1", 0), service.handle()).expect("loopback bind");
    (service, server)
}

fn sample_step() -> Step {
    (1, Observation { success_rate: 0.875, gain: 0.5, damage: 0.0, cost: 0.125 }, 0, 1.0)
}

/// The full query surface over the wire matches the local handle answer
/// for answer: records, trustworthiness, evaluation (bit-identical), and
/// epoch-stamped cuts whose aligned vectors are per-shard and monotone.
#[test]
fn remote_queries_match_local_and_cuts_are_epoch_stamped() {
    let (service, server) = serve_fleet();
    let local = service.handle();
    let remote: RemoteTrustServiceHandle<u32> =
        RemoteTrustServiceHandle::connect(server.local_addr()).expect("connect");

    block_on(remote.register_task(task())).expect("task registers");
    for peer in [3u32, 104, 205, 306] {
        for _ in 0..3 {
            let receipt = block_on(remote.commit(completed(peer as usize / 100, &sample_step())))
                .expect("commit");
            assert_eq!(receipt.task, TaskId(0));
        }
    }

    // value queries: remote answers are the local answers
    let remote_peers = block_on(remote.known_peers()).expect("peers");
    let local_peers = block_on(local.known_peers()).expect("peers");
    assert_eq!(remote_peers, local_peers);
    assert!(!remote_peers.is_empty());

    for &peer in &remote_peers {
        let r = block_on(remote.record(peer, TaskId(0))).expect("record").expect("known");
        let l = block_on(local.record(peer, TaskId(0))).expect("record").expect("known");
        assert_eq!(r, l);
        let rt = block_on(remote.trustworthiness(peer, TaskId(0))).expect("tw").expect("known");
        let lt = block_on(local.trustworthiness(peer, TaskId(0))).expect("tw").expect("known");
        assert_eq!(rt.value().to_bits(), lt.value().to_bits());
    }

    let r_records = block_on(remote.task_records(TaskId(0))).expect("records");
    let l_records = block_on(local.task_records(TaskId(0))).expect("records");
    assert_eq!(r_records, l_records);

    // evaluation runs server-side and comes back bit-identical
    let request = |trustee: u32| {
        DelegationRequest::<u32>::new(
            trustee,
            &task(),
            Goal::profitable(),
            Context::amicable(TaskId(0)),
        )
    };
    let r_ev = block_on(remote.evaluate(request(101))).expect("evaluate");
    let l_ev = block_on(local.evaluate(request(101))).expect("evaluate");
    assert_eq!(r_ev.trustworthiness().value().to_bits(), l_ev.trustworthiness().value().to_bits());
    assert_eq!(r_ev.expectation(), l_ev.expectation());
    assert_eq!(r_ev.basis(), l_ev.basis());
    match block_on(remote.delegate(request(101))).expect("delegate") {
        Decision::Delegate(_) => {}
        Decision::Decline { .. } => panic!("a proven peer under ANY-profit goal delegates"),
    }

    // aligned cuts: one epoch per shard, monotone across successive cuts
    let first = block_on(remote.known_peers_cut(Freshness::Aligned)).expect("cut");
    assert_eq!(first.epochs.len(), 2);
    assert_eq!(first.value, remote_peers);
    block_on(remote.commit(completed(0, &sample_step()))).expect("commit");
    let second = block_on(remote.task_records_cut(TaskId(0), Freshness::Aligned)).expect("cut");
    assert_eq!(second.epochs.len(), 2);
    for (a, b) in first.epochs.iter().zip(&second.epochs) {
        assert!(
            b >= a,
            "per-shard epochs never run backwards: {:?} → {:?}",
            first.epochs,
            second.epochs
        );
    }

    // shard stats travel with capacity alongside depth
    let stats = block_on(remote.shard_stats()).expect("stats");
    assert_eq!(stats.len(), 2);
    for s in &stats {
        assert_eq!(s.mailbox_capacity, ServiceOptions::default().mailbox);
        assert!(s.committed > 0 || s.drains > 0);
    }

    block_on(remote.flush()).expect("flush");
    server.shutdown();
    service.shutdown().expect("clean shutdown");
}

const BANNER: [u8; 8] = [b'S', b'I', b'O', b'T', b'W', 2, 0, 0];

/// Frames `payload` the way the wire protocol does.
fn frame(payload: &[u8]) -> Vec<u8> {
    let mut out = Vec::new();
    let start = siot_core::framing::begin_frame(&mut out);
    out.extend_from_slice(payload);
    siot_core::framing::end_frame(&mut out, start);
    out
}

/// Raw-socket handshake against a live server.
fn raw_connect(addr: SocketAddr) -> TcpStream {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream.write_all(&BANNER).expect("banner out");
    let mut banner = [0u8; 8];
    stream.read_exact(&mut banner).expect("banner in");
    assert_eq!(banner, BANNER);
    stream
}

/// Reads response frames off a raw socket until one payload arrives.
fn read_response(stream: &mut TcpStream, decoder: &mut StreamDecoder) -> Vec<u8> {
    let mut buf = [0u8; 4096];
    loop {
        if let Some(payload) = decoder.next_payload().expect("well-formed server frames") {
            return payload;
        }
        let n = stream.read(&mut buf).expect("server alive");
        assert!(n > 0, "server closed while a response was owed");
        decoder.extend(&buf[..n]);
    }
}

/// Adversarial bytes — a bad banner, torn/bit-flipped/oversized/garbage
/// frames, an unaddressable payload — get typed handling: the offending
/// connection closes (or is answered with a typed error and kept), the
/// accept loop never wedges, and an honest client connected throughout
/// keeps being served.
#[test]
fn adversarial_frames_close_the_connection_not_the_server() {
    let (service, server) = serve_fleet();
    let addr = server.local_addr();

    // an honest client connected before, used throughout, checked after
    let honest: RemoteTrustServiceHandle<u32> =
        RemoteTrustServiceHandle::connect(addr).expect("honest connect");
    block_on(honest.register_task(task())).expect("register");

    let expect_closed = |mut stream: TcpStream| {
        let mut buf = [0u8; 64];
        loop {
            match stream.read(&mut buf) {
                Ok(0) => break,    // clean close
                Ok(_) => continue, // drain whatever was in flight
                Err(_) => break,   // reset also counts as closed
            }
        }
    };

    // 1. garbage banner: connection dropped at the handshake
    {
        let mut stream = TcpStream::connect(addr).expect("connect");
        stream.write_all(b"HTTP/1.1").expect("write");
        let mut banner = [0u8; 8];
        let _ = stream.read_exact(&mut banner); // server's banner may arrive first
        expect_closed(stream);
    }

    // 2. truncated frame then disconnect: torn tail, no wedge
    {
        let mut stream = raw_connect(addr);
        let full = frame(&[0u8; 64]);
        stream.write_all(&full[..full.len() - 10]).expect("write");
        stream.shutdown(Shutdown::Write).expect("half close");
        expect_closed(stream);
    }

    // 3. bit-flipped frame: checksum fails, connection closes
    {
        let mut stream = raw_connect(addr);
        let mut bytes = frame(&{
            let mut p = Vec::new();
            p.extend_from_slice(&1u64.to_le_bytes());
            p.push(5); // a valid Flush request…
            p
        });
        let last = bytes.len() - 1;
        bytes[last] ^= 0x40; // …with one bit flipped
        stream.write_all(&bytes).expect("write");
        expect_closed(stream);
    }

    // 4. oversized length prefix: rejected before it drives an allocation
    {
        let mut stream = raw_connect(addr);
        let mut header = Vec::new();
        header.extend_from_slice(&((1u32 << 24) + 1).to_le_bytes());
        header.extend_from_slice(&0xDEAD_BEEFu32.to_le_bytes());
        stream.write_all(&header).expect("write");
        expect_closed(stream);
    }

    // 5. unaddressable payload (shorter than a request id): close
    {
        let mut stream = raw_connect(addr);
        stream.write_all(&frame(&[1, 2, 3])).expect("write");
        expect_closed(stream);
    }

    // 6. valid frame, garbage request: answered with the typed error on
    //    its request id, and the SAME connection then serves a real request
    {
        let mut stream = raw_connect(addr);
        let mut decoder = StreamDecoder::new(1 << 24);
        let mut evil = Vec::new();
        evil.extend_from_slice(&77u64.to_le_bytes());
        evil.push(0xEE); // unknown opcode
        stream.write_all(&frame(&evil)).expect("write");
        let response = read_response(&mut stream, &mut decoder);
        assert_eq!(&response[..8], &77u64.to_le_bytes(), "error is addressed to its request");
        assert_eq!(response[8], 1, "status byte says error");
        assert_eq!(response[9], 6, "TrustError::Corrupt variant tag");

        let mut flush = Vec::new();
        flush.extend_from_slice(&78u64.to_le_bytes());
        flush.push(5); // OP_FLUSH
        stream.write_all(&frame(&flush)).expect("write");
        let response = read_response(&mut stream, &mut decoder);
        assert_eq!(&response[..8], &78u64.to_le_bytes());
        assert_eq!(response[8], 0, "the connection still serves after a bad request");
    }

    // the honest client never noticed any of it
    let receipt = block_on(honest.commit(completed(0, &sample_step()))).expect("still served");
    assert!(receipt.record.interactions >= 1);
    let fresh: RemoteTrustServiceHandle<u32> =
        RemoteTrustServiceHandle::connect(addr).expect("accept loop alive");
    assert_eq!(block_on(fresh.known_peers()).expect("served"), vec![1u32]);

    server.shutdown();
    service.shutdown().expect("clean shutdown");
}

/// A client that vanishes mid-batch takes down its own connection and
/// nothing else: commits already decoded keep folding, and concurrent
/// connections keep being served.
#[test]
fn client_disconnect_mid_batch_leaves_other_connections_served() {
    let service = ShardedTrustService::spawn_sharded(
        2,
        ServiceOptions { mailbox: 4, ..ServiceOptions::default() },
        |_| TrustStore::<u32>::new(),
    );
    let server =
        RemoteTrustServer::bind(("127.0.0.1", 0), service.handle()).expect("loopback bind");
    let addr = server.local_addr();

    let survivor: RemoteTrustServiceHandle<u32> =
        RemoteTrustServiceHandle::connect(addr).expect("connect");

    // the vanishing client: a large pipelined batch, futures dropped,
    // handle dropped — the socket closes with requests still in flight
    {
        let doomed: RemoteTrustServiceHandle<u32> =
            RemoteTrustServiceHandle::connect(addr).expect("connect");
        let batch: Vec<_> = (0..512).map(|_| completed(9, &sample_step())).collect();
        drop(doomed.submit_batch(batch));
        drop(doomed);
    }

    // the survivor's connection is a separate failure domain
    for _ in 0..50 {
        block_on(survivor.commit(completed(1, &sample_step()))).expect("still served");
    }
    let record = block_on(survivor.record(101, TaskId(0))).expect("still served").expect("present");
    assert_eq!(record.interactions, 50);

    // and brand-new connections are still accepted
    let fresh: RemoteTrustServiceHandle<u32> =
        RemoteTrustServiceHandle::connect(addr).expect("accept loop alive");
    assert!(block_on(fresh.shard_stats()).expect("served").len() == 2);

    server.shutdown();
    service.shutdown().expect("the fleet survived the disconnect");
}

/// Transport death is `ServiceStopped` on every in-flight future — never
/// a hang: proven against a handshake-then-silence server that closes
/// with a request pending.
#[test]
fn dead_transport_resolves_in_flight_futures_with_service_stopped() {
    let listener = TcpListener::bind(("127.0.0.1", 0)).expect("bind");
    let addr = listener.local_addr().expect("addr");
    let silent = std::thread::spawn(move || {
        let (mut stream, _) = listener.accept().expect("accept");
        stream.write_all(&BANNER).expect("banner out");
        let mut banner = [0u8; 8];
        stream.read_exact(&mut banner).expect("banner in");
        // read the request frame so it is truly in flight, answer nothing
        let mut buf = [0u8; 1024];
        let _ = stream.read(&mut buf);
        stream.shutdown(Shutdown::Both).expect("close");
    });

    let remote: RemoteTrustServiceHandle<u32> =
        RemoteTrustServiceHandle::connect(addr).expect("connect");
    let pending = remote.submit(completed(0, &sample_step()));
    assert_eq!(block_on(pending), Err(TrustError::ServiceStopped));
    silent.join().expect("silent server exits");

    // once the transport is known dead, later calls fail fast and typed
    assert_eq!(block_on(remote.known_peers()), Err(TrustError::ServiceStopped));
}

/// Stopping the **served service** over the wire is graceful and typed:
/// the stop round trips Ok, the transport stays up, and every subsequent
/// request is answered with a `ServiceStopped` error response.
#[test]
fn remote_service_shutdown_is_typed_over_a_live_transport() {
    let (service, server) = serve_fleet();
    let remote: RemoteTrustServiceHandle<u32> =
        RemoteTrustServiceHandle::connect(server.local_addr()).expect("connect");

    block_on(remote.commit(completed(0, &sample_step()))).expect("commit");
    block_on(remote.shutdown()).expect("graceful remote stop");
    // idempotent, like a local shutdown
    block_on(remote.shutdown()).expect("second stop is still Ok");
    // the transport is alive: the error is a *response*, not a dead socket
    assert_eq!(block_on(remote.known_peers()), Err(TrustError::ServiceStopped));
    assert_eq!(
        block_on(remote.commit(completed(0, &sample_step()))),
        Err(TrustError::ServiceStopped)
    );

    server.shutdown();
    drop(service); // actors already stopped over the wire
}
