//! Durability test suite for the append-only [`LogBackend`]: crash
//! recovery at every truncation point, corruption detection, the pinned
//! golden on-disk format, and delegation-lifecycle durability.

use siot_core::error::TrustError;
use siot_core::log_backend::{FsyncPolicy, LogOptions, FORMAT_VERSION, LOG_FILE, SNAP_FILE};
use siot_core::prelude::*;
use std::fs;
use std::path::{Path, PathBuf};

mod common;
use common::tmpdir;

const HEADER: usize = 8;

fn rec(i: u32) -> TrustRecord {
    // dyadic components: every value is exactly representable, so equality
    // below is bit-exact, not approximate
    TrustRecord::with_priors(i as f64 / 8.0, 0.5, 0.25, 0.125)
}

/// A log of `n` single-record frames with no snapshot, plus the log bytes.
fn seeded_log(n: u32) -> (PathBuf, Vec<u8>) {
    let dir = tmpdir("seed");
    {
        let mut engine: DurableTrustStore<u32> = TrustEngine::open(&dir).expect("fresh dir");
        for i in 0..n {
            engine.seed_record(i, TaskId(0), rec(i));
        }
        engine.flush().expect("flush succeeds");
    }
    let bytes = fs::read(dir.join(LOG_FILE)).expect("log exists");
    (dir, bytes)
}

fn write_log(dir: &Path, bytes: &[u8]) {
    fs::create_dir_all(dir).expect("dir creatable");
    fs::write(dir.join(LOG_FILE), bytes).expect("log writable");
}

// ---------------------------------------------------------------------------
// Crash recovery: the truncation sweep
// ---------------------------------------------------------------------------

/// Simulates a crash at *every byte boundary* of the log — covering every
/// byte of the final frame and mid-log positions alike. Reopen must never
/// panic, never error, and recover exactly the frames wholly contained in
/// the surviving prefix (the longest checksum-valid prefix).
#[test]
fn truncation_sweep_recovers_longest_valid_prefix() {
    const N: u32 = 6;
    let (dir, bytes) = seeded_log(N);
    fs::remove_dir_all(&dir).expect("seed dir removable");
    let frame = (bytes.len() - HEADER) / N as usize;
    assert_eq!(HEADER + frame * N as usize, bytes.len(), "fixed-width record frames");

    for cut in 0..=bytes.len() {
        let dir = tmpdir("cut");
        write_log(&dir, &bytes[..cut]);
        let engine: DurableTrustStore<u32> = TrustEngine::open(&dir)
            .unwrap_or_else(|e| panic!("cut at byte {cut} must recover, got {e}"));
        let complete = cut.saturating_sub(HEADER) / frame;
        assert_eq!(engine.record_count(), complete, "cut at byte {cut}");
        for i in 0..complete as u32 {
            assert_eq!(engine.record(i, TaskId(0)), Some(rec(i)), "cut at byte {cut}, record {i}");
        }
        // recovery truncated the torn tail: appends continue from a valid
        // frame, and a second open sees the same state plus the append
        drop(engine);
        let mut engine: DurableTrustStore<u32> = TrustEngine::open(&dir).expect("reopen");
        engine.seed_record(99, TaskId(7), rec(7));
        drop(engine);
        let engine: DurableTrustStore<u32> = TrustEngine::open(&dir).expect("third open");
        assert_eq!(engine.record_count(), complete + 1, "cut at byte {cut}");
        assert_eq!(engine.record(99, TaskId(7)), Some(rec(7)));
        drop(engine);
        fs::remove_dir_all(&dir).expect("scratch removable");
    }
}

/// A complete final frame whose checksum fails (crash garbage at the tail)
/// is recovered from silently — only the tail frame is dropped.
#[test]
fn corrupt_tail_frame_is_recovered() {
    const N: u32 = 6;
    let (dir, mut bytes) = seeded_log(N);
    let frame = (bytes.len() - HEADER) / N as usize;
    let last_payload = bytes.len() - frame + 8 + 2; // inside the last frame's payload
    bytes[last_payload] ^= 0xFF;
    write_log(&dir, &bytes);
    let engine: DurableTrustStore<u32> = TrustEngine::open(&dir).expect("tail damage recovers");
    assert_eq!(engine.record_count(), (N - 1) as usize);
    drop(engine);
    fs::remove_dir_all(&dir).expect("scratch removable");
}

/// A checksum failure on a frame *followed by valid frames* cannot be a
/// torn append: it must surface as `TrustError::Corrupt` with the frame's
/// offset, never silently drop data.
#[test]
fn corrupt_mid_log_frame_reports_corrupt() {
    const N: u32 = 6;
    let (dir, mut bytes) = seeded_log(N);
    let frame = (bytes.len() - HEADER) / N as usize;
    let second_frame_start = HEADER + frame;
    bytes[second_frame_start + 8 + 3] ^= 0x55; // payload of frame #1 (non-tail)
    write_log(&dir, &bytes);
    let err = DurableTrustStore::<u32>::open(&dir).expect_err("mid-log corruption is fatal");
    match err {
        TrustError::Corrupt { what, offset } => {
            assert_eq!(what, "log frame checksum");
            assert_eq!(offset, second_frame_start as u64);
        }
        other => panic!("expected Corrupt, got {other:?}"),
    }
    fs::remove_dir_all(&dir).expect("scratch removable");
}

/// Corrupting a mid-log frame's *length prefix* (not just its payload)
/// must still surface as `Corrupt`: the recovery scan looks for valid
/// frames at every alignment, so a damaged length field cannot disguise
/// the valid frames behind it as a torn tail.
#[test]
fn corrupt_mid_log_length_field_reports_corrupt() {
    const N: u32 = 6;
    let (dir, bytes) = seeded_log(N);
    let frame = (bytes.len() - HEADER) / N as usize;
    let second_frame_start = HEADER + frame;
    for flip in [0x01u8, 0x40, 0xFF] {
        let mut damaged = bytes.clone();
        damaged[second_frame_start] ^= flip; // low byte of the len field
        write_log(&dir, &damaged);
        let err = DurableTrustStore::<u32>::open(&dir)
            .expect_err("len-field damage before valid frames is corruption, not a tear");
        assert!(matches!(err, TrustError::Corrupt { .. }), "flip {flip:#x}: got {err:?}");
    }
    fs::remove_dir_all(&dir).expect("scratch removable");
}

/// A log that predates the snapshot (crash between the snapshot rename and
/// the log truncation) is discarded on open: its stale absolute frames
/// must never replay over — and regress — the newer snapshot.
#[test]
fn stale_pre_snapshot_log_is_discarded() {
    let dir = tmpdir("stale-log");
    let stale_log = {
        let mut engine: DurableTrustStore<u32> = TrustEngine::open(&dir).expect("fresh dir");
        engine.seed_record(1, TaskId(0), rec(1)); // old state: s_hat = 1/8
        engine.flush().expect("flush succeeds");
        let stale = fs::read(dir.join(LOG_FILE)).expect("log exists");
        engine.seed_record(1, TaskId(0), rec(4)); // new state: s_hat = 4/8
        engine.compact().expect("compaction succeeds");
        stale
    };
    // simulate the crash window: snapshot renamed (new state), log never
    // truncated (still generation 0 with the stale frame)
    fs::write(dir.join(LOG_FILE), &stale_log).expect("log writable");
    let engine: DurableTrustStore<u32> = TrustEngine::open(&dir).expect("recovers");
    assert_eq!(
        engine.record(1, TaskId(0)),
        Some(rec(4)),
        "the snapshot wins; the stale log must not regress state"
    );
    drop(engine);
    fs::remove_dir_all(&dir).expect("scratch removable");
}

/// Snapshots are written atomically, so *any* damage inside one is real
/// corruption — no tail tolerance there.
#[test]
fn corrupt_snapshot_reports_corrupt() {
    let dir = tmpdir("snapcorrupt");
    {
        let mut engine: DurableTrustStore<u32> = TrustEngine::open(&dir).expect("fresh dir");
        for i in 0..5u32 {
            engine.seed_record(i, TaskId(0), rec(i));
        }
        engine.compact().expect("compaction succeeds");
    }
    let snap = dir.join(SNAP_FILE);
    let mut bytes = fs::read(&snap).expect("snapshot exists");
    let mid = HEADER + 12;
    bytes[mid] ^= 0xFF;
    fs::write(&snap, &bytes).expect("snapshot writable");
    let err = DurableTrustStore::<u32>::open(&dir).expect_err("snapshot damage is fatal");
    assert!(matches!(err, TrustError::Corrupt { what: "snapshot frame", .. }), "got {err:?}");
    fs::remove_dir_all(&dir).expect("scratch removable");
}

// ---------------------------------------------------------------------------
// Format versioning
// ---------------------------------------------------------------------------

#[test]
fn version_mismatch_is_a_typed_error() {
    // a log written by a hypothetical future format version
    let dir = tmpdir("version");
    write_log(&dir, &[b'S', b'I', b'O', b'T', b'L', FORMAT_VERSION + 1, 0, 0]);
    let err = DurableTrustStore::<u32>::open(&dir).expect_err("future version must not parse");
    assert_eq!(
        err,
        TrustError::UnsupportedFormat { found: FORMAT_VERSION + 1, expected: FORMAT_VERSION }
    );
    fs::remove_dir_all(&dir).expect("scratch removable");

    // same for the snapshot
    let dir = tmpdir("snapversion");
    fs::create_dir_all(&dir).expect("dir creatable");
    fs::write(dir.join(SNAP_FILE), [b'S', b'I', b'O', b'T', b'S', 9, 0, 0]).expect("writable");
    let err = DurableTrustStore::<u32>::open(&dir).expect_err("future snapshot must not parse");
    assert_eq!(err, TrustError::UnsupportedFormat { found: 9, expected: FORMAT_VERSION });
    fs::remove_dir_all(&dir).expect("scratch removable");
}

// ---------------------------------------------------------------------------
// Golden file: the on-disk format is pinned
// ---------------------------------------------------------------------------

fn fixture_dir() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures/golden")
}

/// Builds the golden state. Dyadic values throughout, so the pinned
/// assertions below are exact.
fn write_golden_state(dir: &Path) {
    let mut engine: DurableTrustStore<u32> = TrustEngine::open(dir).expect("dir opens");
    let betas = ForgettingFactors::uniform(0.5);
    engine.seed_record(1, TaskId(0), TrustRecord::with_priors(0.5, 0.25, 0.125, 0.0625));
    engine
        .observe_batch(
            &[(
                2,
                TaskId(1),
                Observation { success_rate: 0.75, gain: 0.5, damage: 0.25, cost: 0.0 },
            )],
            &betas,
        )
        .expect("in-range");
    engine.seed_usage_log(3, || UsageLog { responsive: 6, abusive: 2 });
    // the snapshot holds everything above…
    engine.compact().expect("compaction succeeds");
    // …and the log tail holds what follows
    engine.observe(
        2,
        TaskId(1),
        &Observation { success_rate: 0.25, gain: 0.0, damage: 0.75, cost: 1.0 },
        &betas,
    );
    engine.seed_usage_log(4, || UsageLog { responsive: 1, abusive: 0 });
    engine.flush().expect("flush succeeds");
}

fn assert_golden_state(engine: &DurableTrustStore<u32>) {
    assert_eq!(engine.record_count(), 2);
    assert_eq!(engine.known_peers(), vec![1, 2]);
    let r1 = engine.record(1, TaskId(0)).expect("seeded record");
    assert_eq!((r1.s_hat, r1.g_hat, r1.d_hat, r1.c_hat), (0.5, 0.25, 0.125, 0.0625));
    assert_eq!(r1.interactions, 0);
    // two β=0.5 folds: 0.75 then blend(0.75, 0.25) etc — all dyadic
    let r2 = engine.record(2, TaskId(1)).expect("observed record");
    assert_eq!((r2.s_hat, r2.g_hat, r2.d_hat, r2.c_hat), (0.5, 0.25, 0.5, 0.5));
    assert_eq!(r2.interactions, 2);
    assert_eq!(engine.usage_log(3), UsageLog { responsive: 6, abusive: 2 });
    assert_eq!(engine.usage_log(4), UsageLog { responsive: 1, abusive: 0 });
}

/// Replays the *committed* fixture bytes and asserts the pinned state: a
/// format change either keeps reading version-1 files exactly like this, or
/// bumps [`FORMAT_VERSION`] (and regenerates the fixture via the ignored
/// test below).
#[test]
fn golden_fixture_replays_to_pinned_state() {
    let fixtures = fixture_dir();
    // fixtures are committed; work on a copy so opening never touches them
    let dir = tmpdir("golden");
    fs::create_dir_all(&dir).expect("dir creatable");
    for name in [LOG_FILE, SNAP_FILE] {
        fs::copy(fixtures.join(name), dir.join(name)).unwrap_or_else(|e| {
            panic!("fixture {name} must exist (see generate_golden_fixture): {e}")
        });
    }
    let engine: DurableTrustStore<u32> = TrustEngine::open(&dir).expect("fixture opens");
    assert_golden_state(&engine);
    drop(engine);
    fs::remove_dir_all(&dir).expect("scratch removable");
}

/// The fixture's generator — run `cargo test -p siot-core --test
/// persistence -- --ignored generate_golden_fixture` after an *intentional*
/// format-version bump to re-record the files, and commit them.
#[test]
#[ignore = "regenerates the committed golden fixture"]
fn generate_golden_fixture() {
    let dir = fixture_dir();
    let _ = fs::remove_dir_all(&dir);
    write_golden_state(&dir);
    // sanity: the freshly recorded fixture replays to the pinned state
    let engine: DurableTrustStore<u32> = TrustEngine::open(&dir).expect("fixture reopens");
    assert_golden_state(&engine);
}

/// The generator and the pinned assertions agree on today's code, with the
/// round trip running through a scratch dir (so this holds even when the
/// committed fixture is stale in a working tree).
#[test]
fn golden_state_round_trips_today() {
    let dir = tmpdir("golden-today");
    write_golden_state(&dir);
    let engine: DurableTrustStore<u32> = TrustEngine::open(&dir).expect("reopens");
    assert_golden_state(&engine);
    drop(engine);
    fs::remove_dir_all(&dir).expect("scratch removable");
}

// ---------------------------------------------------------------------------
// Delegation-lifecycle durability
// ---------------------------------------------------------------------------

/// Execute sessions, drop the engine *without* an explicit flush, reopen:
/// interaction counts and mutuality logs must match exactly — and keep
/// matching as more sessions run, so double-counting on replay is
/// unrepresentable.
#[test]
fn executed_sessions_survive_drop_without_flush() {
    let dir = tmpdir("lifecycle");
    let task = Task::uniform(TaskId(0), [CharacteristicId(0)]).expect("non-empty");
    let betas = ForgettingFactors::figures();
    let run_sessions = |engine: &mut DurableTrustStore<u32>, n: u32, offset: u32| {
        for i in 0..n {
            let peer = (offset + i) % 3;
            let active = engine
                .delegate(peer, &task, Goal::ANY, Context::amicable(task.id()))
                .activate(engine);
            let outcome = if i % 4 == 0 {
                DelegationOutcome::failed(0.5, 0.25).abusive()
            } else {
                DelegationOutcome::succeeded(0.75, 0.125)
            };
            active.execute(engine, outcome, &betas).expect("in-range outcome");
        }
    };

    let (expected_records, expected_logs);
    {
        let mut engine: DurableTrustStore<u32> = TrustEngine::open(&dir).expect("fresh dir");
        engine.register_task(task.clone());
        run_sessions(&mut engine, 20, 0);
        expected_records = (0..3u32).map(|p| engine.record(p, task.id())).collect::<Vec<_>>();
        expected_logs = (0..3u32).map(|p| engine.usage_log(p)).collect::<Vec<_>>();
        // dropped without flush
    }

    let mut engine: DurableTrustStore<u32> = TrustEngine::open(&dir).expect("reopen");
    engine.register_task(task.clone());
    for p in 0..3u32 {
        assert_eq!(engine.record(p, task.id()), expected_records[p as usize], "peer {p}");
        assert_eq!(engine.usage_log(p), expected_logs[p as usize], "peer {p}");
    }
    let total: u64 =
        (0..3u32).filter_map(|p| engine.record(p, task.id())).map(|r| r.interactions).sum();
    assert_eq!(total, 20, "one fold per executed session, nothing replayed twice");
    let logged: u64 = (0..3u32).map(|p| engine.usage_log(p).total()).sum();
    assert_eq!(logged, 20);

    // sessions after recovery continue the same histories
    run_sessions(&mut engine, 5, 1);
    drop(engine);
    let engine: DurableTrustStore<u32> = TrustEngine::open(&dir).expect("second reopen");
    let total: u64 =
        (0..3u32).filter_map(|p| engine.record(p, task.id())).map(|r| r.interactions).sum();
    assert_eq!(total, 25);
    let logged: u64 = (0..3u32).map(|p| engine.usage_log(p).total()).sum();
    assert_eq!(logged, 25);
    drop(engine);
    fs::remove_dir_all(&dir).expect("scratch removable");
}

/// `commit_batch` — the coordinator's slate shape — is just as durable.
#[test]
fn committed_batches_survive_reopen() {
    let dir = tmpdir("batch");
    let task = Task::uniform(TaskId(0), [CharacteristicId(0)]).expect("non-empty");
    let betas = ForgettingFactors::figures();
    {
        let mut engine: DurableTrustStore<u32> = TrustEngine::open(&dir).expect("fresh dir");
        let mut pending = Vec::new();
        for i in 0..12u32 {
            let active = engine
                .delegate(i % 4, &task, Goal::ANY, Context::amicable(task.id()))
                .activate(&engine);
            pending.push(active.finish(DelegationOutcome::succeeded(0.5, 0.25)).expect("in-range"));
        }
        engine.commit_batch(pending, &betas);
    }
    let engine: DurableTrustStore<u32> = TrustEngine::open(&dir).expect("reopen");
    for p in 0..4u32 {
        assert_eq!(engine.record(p, task.id()).expect("committed").interactions, 3);
        assert_eq!(engine.usage_log(p).responsive, 3);
    }
    drop(engine);
    fs::remove_dir_all(&dir).expect("scratch removable");
}

/// Raw `usage_log_mut` edits bypass the journal by design; `flush`
/// re-journals them. Both halves of that contract, pinned.
#[test]
fn raw_usage_log_edits_need_flush() {
    let dir = tmpdir("rawlog");
    {
        let mut engine: DurableTrustStore<u32> = TrustEngine::open(&dir).expect("fresh dir");
        engine.usage_log_mut(9).record_abusive();
        // dropped without flush: the raw edit is lost (documented)
    }
    {
        let engine: DurableTrustStore<u32> = TrustEngine::open(&dir).expect("reopen");
        assert_eq!(engine.usage_log(9), UsageLog::default());
    }
    {
        let mut engine: DurableTrustStore<u32> = TrustEngine::open(&dir).expect("reopen");
        engine.usage_log_mut(9).record_abusive();
        engine.flush().expect("flush succeeds");
    }
    let engine: DurableTrustStore<u32> = TrustEngine::open(&dir).expect("final reopen");
    assert_eq!(engine.usage_log(9).abusive, 1);
    drop(engine);
    fs::remove_dir_all(&dir).expect("scratch removable");
}

#[test]
fn clear_records_is_durable_and_keeps_usage_logs() {
    let dir = tmpdir("clear");
    {
        let mut engine: DurableTrustStore<u32> = TrustEngine::open(&dir).expect("fresh dir");
        engine.seed_record(1, TaskId(0), rec(1));
        engine.seed_usage_log(1, || UsageLog { responsive: 2, abusive: 0 });
        engine.clear_records();
        engine.seed_record(2, TaskId(0), rec(2));
    }
    let engine: DurableTrustStore<u32> = TrustEngine::open(&dir).expect("reopen");
    assert_eq!(engine.record_count(), 1);
    assert!(engine.record(1, TaskId(0)).is_none(), "cleared record stays cleared");
    assert_eq!(engine.record(2, TaskId(0)), Some(rec(2)));
    assert_eq!(engine.usage_log(1).responsive, 2, "clear_records keeps usage logs");
    drop(engine);
    fs::remove_dir_all(&dir).expect("scratch removable");
}

// ---------------------------------------------------------------------------
// Reopen smoke (the CI `persistence` step's fast path)
// ---------------------------------------------------------------------------

#[test]
fn reopen_smoke_tmpdir() {
    let dir = tmpdir("smoke");
    let betas = ForgettingFactors::figures();
    {
        let mut engine: DurableTrustStore<u32> = TrustEngine::open_with(
            &dir,
            LogOptions { fsync: FsyncPolicy::Always, compact_every: 64 },
        )
        .expect("fresh dir");
        for i in 0..200u32 {
            engine.observe(i % 10, TaskId((i / 10) % 2), &Observation::success(0.5, 0.25), &betas);
        }
    }
    let engine: DurableTrustStore<u32> = TrustEngine::open(&dir).expect("reopen");
    assert_eq!(engine.record_count(), 20);
    assert_eq!(engine.known_peers().len(), 10);
    assert_eq!(engine.record(0, TaskId(0)).expect("warm").interactions, 10);
    assert!(engine.trustworthiness(0, TaskId(0)).expect("warm").value() > 0.5);
    drop(engine);
    fs::remove_dir_all(&dir).expect("scratch removable");
}
