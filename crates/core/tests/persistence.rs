//! Durability test suite for the segmented [`LogBackend`] chain: crash
//! recovery at every truncation point of the active segment *and* the
//! manifest, corruption detection across sealed segments, group-commit
//! durability under [`FsyncPolicy::Always`], legacy (version-1) migration,
//! the pinned golden on-disk format, and delegation-lifecycle durability.

use siot_core::error::TrustError;
use siot_core::log_backend::{
    segment_file_name, FsyncPolicy, LogOptions, FORMAT_VERSION, LEGACY_FORMAT_VERSION, LOG_FILE,
    MANIFEST_FILE, SNAP_FILE,
};
use siot_core::prelude::*;
use std::fs;
use std::path::{Path, PathBuf};

mod common;
use common::tmpdir;

const HEADER: usize = 8;

fn rec(i: u32) -> TrustRecord {
    // dyadic components: every value is exactly representable, so equality
    // below is bit-exact, not approximate
    TrustRecord::with_priors(i as f64 / 8.0, 0.5, 0.25, 0.125)
}

/// `seg-*.log` files in `dir`, sorted by name (= by sequence number; the
/// last one is the active segment).
fn segment_files(dir: &Path) -> Vec<PathBuf> {
    let mut v: Vec<PathBuf> = fs::read_dir(dir)
        .expect("dir readable")
        .map(|e| e.expect("entry readable").path())
        .filter(|p| {
            p.file_name()
                .and_then(|n| n.to_str())
                .is_some_and(|n| n.starts_with("seg-") && n.ends_with(".log"))
        })
        .collect();
    v.sort();
    v
}

fn active_segment(dir: &Path) -> PathBuf {
    segment_files(dir).pop().expect("chain has an active segment")
}

/// Copies every file of a template chain directory into a fresh scratch
/// dir, so each sweep iteration opens an untouched copy.
fn copy_chain(src: &Path, dst: &Path) {
    fs::create_dir_all(dst).expect("dir creatable");
    for entry in fs::read_dir(src).expect("template readable") {
        let entry = entry.expect("entry readable");
        fs::copy(entry.path(), dst.join(entry.file_name())).expect("file copies");
    }
}

/// A template chain of `n` single-record frames, written with `options`.
fn seeded_chain(n: u32, options: LogOptions) -> PathBuf {
    let dir = tmpdir("seed");
    let mut engine: DurableTrustStore<u32> = TrustEngine::open_with(&dir, options).expect("fresh");
    for i in 0..n {
        engine.seed_record(i, TaskId(0), rec(i));
    }
    engine.flush().expect("flush succeeds");
    drop(engine);
    dir
}

fn no_compaction() -> LogOptions {
    LogOptions { compact_every: 0, ..LogOptions::default() }
}

// ---------------------------------------------------------------------------
// Crash recovery: the truncation sweeps
// ---------------------------------------------------------------------------

/// Simulates a crash at *every byte boundary* of the active segment.
/// Reopen must never panic and recover exactly the frames wholly contained
/// in the surviving prefix (the longest checksum-valid prefix). Cuts inside
/// the 8-byte header are real corruption: segment files are fsynced before
/// the manifest ever lists them, so a listed segment cannot lack one.
#[test]
fn truncation_sweep_recovers_longest_valid_prefix() {
    const N: u32 = 6;
    let template = seeded_chain(N, no_compaction());
    let seg = active_segment(&template);
    let seg_name = seg.file_name().expect("file name").to_owned();
    let bytes = fs::read(&seg).expect("active segment readable");
    let frame = (bytes.len() - HEADER) / N as usize;
    assert_eq!(HEADER + frame * N as usize, bytes.len(), "fixed-width record frames");

    for cut in 0..=bytes.len() {
        let dir = tmpdir("cut");
        copy_chain(&template, &dir);
        fs::write(dir.join(&seg_name), &bytes[..cut]).expect("truncated segment writable");
        if cut < HEADER {
            let err = DurableTrustStore::<u32>::open(&dir)
                .expect_err("a listed segment without its header is corruption");
            assert!(
                matches!(err, TrustError::Corrupt { what: "segment header", .. }),
                "cut at byte {cut}: got {err:?}"
            );
            fs::remove_dir_all(&dir).expect("scratch removable");
            continue;
        }
        let engine: DurableTrustStore<u32> = TrustEngine::open(&dir)
            .unwrap_or_else(|e| panic!("cut at byte {cut} must recover, got {e}"));
        let complete = (cut - HEADER) / frame;
        assert_eq!(engine.record_count(), complete, "cut at byte {cut}");
        for i in 0..complete as u32 {
            assert_eq!(engine.record(i, TaskId(0)), Some(rec(i)), "cut at byte {cut}, record {i}");
        }
        // recovery truncated the torn tail: appends continue from a valid
        // frame, and a second open sees the same state plus the append
        drop(engine);
        let mut engine: DurableTrustStore<u32> = TrustEngine::open(&dir).expect("reopen");
        engine.seed_record(99, TaskId(7), rec(7));
        drop(engine);
        let engine: DurableTrustStore<u32> = TrustEngine::open(&dir).expect("third open");
        assert_eq!(engine.record_count(), complete + 1, "cut at byte {cut}");
        assert_eq!(engine.record(99, TaskId(7)), Some(rec(7)));
        drop(engine);
        fs::remove_dir_all(&dir).expect("scratch removable");
    }
    fs::remove_dir_all(&template).expect("template removable");
}

/// The same sweep against a *multi-segment* chain (tiny `segment_bytes`
/// forces rotations): sealed segments replay in full no matter where the
/// active segment was cut — a crash tears at most the chain's tail.
#[test]
fn truncation_sweep_across_segment_boundaries() {
    const N: u32 = 23;
    let options = LogOptions { segment_bytes: 256, compact_every: 0, ..LogOptions::default() };
    let template = seeded_chain(N, options);
    assert!(segment_files(&template).len() >= 3, "tiny segment_bytes forces rotations");

    // frame width, derived rather than assumed
    let single = seeded_chain(1, no_compaction());
    let frame = fs::read(active_segment(&single)).expect("readable").len() - HEADER;
    fs::remove_dir_all(&single).expect("scratch removable");

    let seg = active_segment(&template);
    let seg_name = seg.file_name().expect("file name").to_owned();
    let bytes = fs::read(&seg).expect("active segment readable");
    let active_frames = (bytes.len() - HEADER) / frame;
    assert_eq!(HEADER + active_frames * frame, bytes.len(), "whole frames in the active segment");
    assert!(active_frames >= 2, "the sweep needs a multi-frame active segment");
    let sealed = N as usize - active_frames;

    for cut in 0..=bytes.len() {
        let dir = tmpdir("segcut");
        copy_chain(&template, &dir);
        fs::write(dir.join(&seg_name), &bytes[..cut]).expect("truncated segment writable");
        if cut < HEADER {
            assert!(
                DurableTrustStore::<u32>::open(&dir).is_err(),
                "cut at byte {cut}: headerless active segment is corruption"
            );
            fs::remove_dir_all(&dir).expect("scratch removable");
            continue;
        }
        let engine: DurableTrustStore<u32> = TrustEngine::open(&dir)
            .unwrap_or_else(|e| panic!("cut at byte {cut} must recover, got {e}"));
        let recovered = sealed + (cut - HEADER) / frame;
        assert_eq!(engine.record_count(), recovered, "cut at byte {cut}");
        for i in 0..recovered as u32 {
            assert_eq!(engine.record(i, TaskId(0)), Some(rec(i)), "cut at byte {cut}, record {i}");
        }
        drop(engine);
        fs::remove_dir_all(&dir).expect("scratch removable");
    }
    fs::remove_dir_all(&template).expect("template removable");
}

/// The manifest is swapped atomically (temp file + fsync + rename), so a
/// truncated manifest is real corruption at *every* cut — recovery must
/// report it as such rather than guess at a chain.
#[test]
fn manifest_truncation_sweep_reports_corrupt() {
    let options = LogOptions { segment_bytes: 256, compact_every: 0, ..LogOptions::default() };
    let template = seeded_chain(23, options);
    let bytes = fs::read(template.join(MANIFEST_FILE)).expect("manifest readable");
    for cut in 0..bytes.len() {
        let dir = tmpdir("mancut");
        copy_chain(&template, &dir);
        fs::write(dir.join(MANIFEST_FILE), &bytes[..cut]).expect("truncated manifest writable");
        let err = DurableTrustStore::<u32>::open(&dir)
            .expect_err("a truncated manifest must never parse");
        assert!(matches!(err, TrustError::Corrupt { .. }), "cut at byte {cut}: got {err:?}");
        fs::remove_dir_all(&dir).expect("scratch removable");
    }
    fs::remove_dir_all(&template).expect("template removable");
}

/// Flipping any single manifest byte (outside the two reserved header
/// bytes, which carry no meaning) must fail the header check or the chain
/// frame's checksum — never parse into a different chain.
#[test]
fn manifest_byte_flips_never_parse() {
    let options = LogOptions { segment_bytes: 256, compact_every: 0, ..LogOptions::default() };
    let template = seeded_chain(23, options);
    let bytes = fs::read(template.join(MANIFEST_FILE)).expect("manifest readable");
    for at in (0..bytes.len()).filter(|&at| at != 6 && at != 7) {
        let dir = tmpdir("manflip");
        copy_chain(&template, &dir);
        let mut damaged = bytes.clone();
        damaged[at] ^= 0xFF;
        fs::write(dir.join(MANIFEST_FILE), &damaged).expect("damaged manifest writable");
        let err =
            DurableTrustStore::<u32>::open(&dir).expect_err("a damaged manifest must never parse");
        assert!(
            matches!(err, TrustError::Corrupt { .. } | TrustError::UnsupportedFormat { .. }),
            "flip at byte {at}: got {err:?}"
        );
        fs::remove_dir_all(&dir).expect("scratch removable");
    }
    fs::remove_dir_all(&template).expect("template removable");
}

/// A complete final frame whose checksum fails (crash garbage at the tail
/// of the active segment) is recovered from silently — only the tail frame
/// is dropped.
#[test]
fn corrupt_tail_frame_is_recovered() {
    const N: u32 = 6;
    let dir = seeded_chain(N, no_compaction());
    let seg = active_segment(&dir);
    let mut bytes = fs::read(&seg).expect("active segment readable");
    let frame = (bytes.len() - HEADER) / N as usize;
    let last_payload = bytes.len() - frame + 8 + 2; // inside the last frame's payload
    bytes[last_payload] ^= 0xFF;
    fs::write(&seg, &bytes).expect("segment writable");
    let engine: DurableTrustStore<u32> = TrustEngine::open(&dir).expect("tail damage recovers");
    assert_eq!(engine.record_count(), (N - 1) as usize);
    drop(engine);
    fs::remove_dir_all(&dir).expect("scratch removable");
}

/// A checksum failure on a frame *followed by valid frames* cannot be a
/// torn append: it must surface as `TrustError::Corrupt` with the frame's
/// offset, never silently drop data.
#[test]
fn corrupt_mid_log_frame_reports_corrupt() {
    const N: u32 = 6;
    let dir = seeded_chain(N, no_compaction());
    let seg = active_segment(&dir);
    let mut bytes = fs::read(&seg).expect("active segment readable");
    let frame = (bytes.len() - HEADER) / N as usize;
    let second_frame_start = HEADER + frame;
    bytes[second_frame_start + 8 + 3] ^= 0x55; // payload of frame #1 (non-tail)
    fs::write(&seg, &bytes).expect("segment writable");
    let err = DurableTrustStore::<u32>::open(&dir).expect_err("mid-log corruption is fatal");
    match err {
        TrustError::Corrupt { what, offset } => {
            assert_eq!(what, "log frame checksum");
            assert_eq!(offset, second_frame_start as u64);
        }
        other => panic!("expected Corrupt, got {other:?}"),
    }
    fs::remove_dir_all(&dir).expect("scratch removable");
}

/// Corrupting a mid-log frame's *length prefix* (not just its payload)
/// must still surface as `Corrupt`: the recovery scan looks for valid
/// frames at every alignment, so a damaged length field cannot disguise
/// the valid frames behind it as a torn tail.
#[test]
fn corrupt_mid_log_length_field_reports_corrupt() {
    const N: u32 = 6;
    let dir = seeded_chain(N, no_compaction());
    let seg = active_segment(&dir);
    let bytes = fs::read(&seg).expect("active segment readable");
    let frame = (bytes.len() - HEADER) / N as usize;
    let second_frame_start = HEADER + frame;
    for flip in [0x01u8, 0x40, 0xFF] {
        let mut damaged = bytes.clone();
        damaged[second_frame_start] ^= flip; // low byte of the len field
        fs::write(&seg, &damaged).expect("segment writable");
        let err = DurableTrustStore::<u32>::open(&dir)
            .expect_err("len-field damage before valid frames is corruption, not a tear");
        assert!(matches!(err, TrustError::Corrupt { .. }), "flip {flip:#x}: got {err:?}");
    }
    fs::remove_dir_all(&dir).expect("scratch removable");
}

/// Sealed (non-active) segments were fsynced before the manifest listed
/// them, so they get no tail tolerance: any damage inside one is fatal.
#[test]
fn corrupt_sealed_segment_reports_corrupt() {
    let options = LogOptions { segment_bytes: 256, compact_every: 0, ..LogOptions::default() };
    let dir = seeded_chain(23, options);
    let sealed = &segment_files(&dir)[0];
    let mut bytes = fs::read(sealed).expect("sealed segment readable");
    let mid = HEADER + 10;
    bytes[mid] ^= 0xFF;
    fs::write(sealed, &bytes).expect("segment writable");
    let err = DurableTrustStore::<u32>::open(&dir).expect_err("sealed-segment damage is fatal");
    assert!(matches!(err, TrustError::Corrupt { what: "segment frame", .. }), "got {err:?}");
    fs::remove_dir_all(&dir).expect("scratch removable");
}

/// A manifest-listed segment cannot vanish by crash — deletions happen
/// only after the superseding manifest is durable — so its absence is
/// corruption, never a fresh store.
#[test]
fn missing_listed_segment_reports_corrupt() {
    let options = LogOptions { segment_bytes: 256, compact_every: 0, ..LogOptions::default() };
    let dir = seeded_chain(23, options);
    fs::remove_file(&segment_files(&dir)[0]).expect("sealed segment removable");
    let err = DurableTrustStore::<u32>::open(&dir).expect_err("a missing listed segment is fatal");
    assert!(
        matches!(err, TrustError::Corrupt { what: "segment listed in manifest", .. }),
        "got {err:?}"
    );
    fs::remove_dir_all(&dir).expect("scratch removable");
}

/// Files a crashed chain mutation leaves behind — an unlisted segment from
/// an interrupted rotation, a manifest temp file — are swept on open and
/// never replayed.
#[test]
fn orphan_files_are_swept_on_open() {
    const N: u32 = 23;
    let options = LogOptions { segment_bytes: 256, compact_every: 0, ..LogOptions::default() };
    let dir = seeded_chain(N, options);
    let orphan = dir.join(segment_file_name(42));
    fs::write(&orphan, b"half-written rotation garbage").expect("orphan writable");
    fs::write(dir.join("trust.manifest.tmp"), b"torn manifest swap").expect("tmp writable");
    let engine: DurableTrustStore<u32> = TrustEngine::open(&dir).expect("orphans never block open");
    assert_eq!(engine.record_count(), N as usize, "orphan contents are not state");
    drop(engine);
    assert!(!orphan.exists(), "unlisted segment swept");
    assert!(!dir.join("trust.manifest.tmp").exists(), "manifest temp file swept");
    fs::remove_dir_all(&dir).expect("scratch removable");
}

// ---------------------------------------------------------------------------
// Format versioning
// ---------------------------------------------------------------------------

#[test]
fn version_mismatch_is_a_typed_error() {
    // a manifest written by a hypothetical future format version
    let dir = tmpdir("version");
    fs::create_dir_all(&dir).expect("dir creatable");
    fs::write(dir.join(MANIFEST_FILE), [b'S', b'I', b'O', b'T', b'M', FORMAT_VERSION + 1, 0, 0])
        .expect("writable");
    let err = DurableTrustStore::<u32>::open(&dir).expect_err("future manifest must not parse");
    assert_eq!(
        err,
        TrustError::UnsupportedFormat { found: FORMAT_VERSION + 1, expected: FORMAT_VERSION }
    );
    fs::remove_dir_all(&dir).expect("scratch removable");

    // same for a listed segment
    let dir = seeded_chain(3, no_compaction());
    let seg = active_segment(&dir);
    let mut bytes = fs::read(&seg).expect("segment readable");
    bytes[5] = FORMAT_VERSION + 1;
    fs::write(&seg, &bytes).expect("segment writable");
    let err = DurableTrustStore::<u32>::open(&dir).expect_err("future segment must not parse");
    assert_eq!(
        err,
        TrustError::UnsupportedFormat { found: FORMAT_VERSION + 1, expected: FORMAT_VERSION }
    );
    fs::remove_dir_all(&dir).expect("scratch removable");

    // legacy (version-1) files declaring any other version are refused
    // against the *legacy* expectation, not the current one
    let dir = tmpdir("legacy-version");
    fs::create_dir_all(&dir).expect("dir creatable");
    fs::write(dir.join(LOG_FILE), [b'S', b'I', b'O', b'T', b'L', LEGACY_FORMAT_VERSION + 1, 0, 0])
        .expect("writable");
    let err = DurableTrustStore::<u32>::open(&dir).expect_err("not a v1 log");
    assert_eq!(
        err,
        TrustError::UnsupportedFormat {
            found: LEGACY_FORMAT_VERSION + 1,
            expected: LEGACY_FORMAT_VERSION
        }
    );
    fs::remove_dir_all(&dir).expect("scratch removable");

    let dir = tmpdir("legacy-snapversion");
    fs::create_dir_all(&dir).expect("dir creatable");
    fs::write(dir.join(SNAP_FILE), [b'S', b'I', b'O', b'T', b'S', 9, 0, 0]).expect("writable");
    let err = DurableTrustStore::<u32>::open(&dir).expect_err("not a v1 snapshot");
    assert_eq!(err, TrustError::UnsupportedFormat { found: 9, expected: LEGACY_FORMAT_VERSION });
    fs::remove_dir_all(&dir).expect("scratch removable");
}

// ---------------------------------------------------------------------------
// Golden files: the on-disk formats are pinned
// ---------------------------------------------------------------------------

fn fixture_dir() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures/golden")
}

fn legacy_fixture_dir() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures/golden-v1")
}

/// Builds the golden state. Dyadic values throughout, so the pinned
/// assertions below are exact.
fn write_golden_state(dir: &Path) {
    let mut engine: DurableTrustStore<u32> = TrustEngine::open(dir).expect("dir opens");
    let betas = ForgettingFactors::uniform(0.5);
    engine.seed_record(1, TaskId(0), TrustRecord::with_priors(0.5, 0.25, 0.125, 0.0625));
    engine
        .observe_batch(
            &[(
                2,
                TaskId(1),
                Observation { success_rate: 0.75, gain: 0.5, damage: 0.25, cost: 0.0 },
            )],
            &betas,
        )
        .expect("in-range");
    engine.seed_usage_log(3, || UsageLog { responsive: 6, abusive: 2 });
    // the compacted segment holds everything above…
    engine.compact().expect("compaction succeeds");
    // …and the active segment holds what follows
    engine.observe(
        2,
        TaskId(1),
        &Observation { success_rate: 0.25, gain: 0.0, damage: 0.75, cost: 1.0 },
        &betas,
    );
    engine.seed_usage_log(4, || UsageLog { responsive: 1, abusive: 0 });
    engine.flush().expect("flush succeeds");
}

fn assert_golden_state(engine: &DurableTrustStore<u32>) {
    assert_eq!(engine.record_count(), 2);
    assert_eq!(engine.known_peers(), vec![1, 2]);
    let r1 = engine.record(1, TaskId(0)).expect("seeded record");
    assert_eq!((r1.s_hat, r1.g_hat, r1.d_hat, r1.c_hat), (0.5, 0.25, 0.125, 0.0625));
    assert_eq!(r1.interactions, 0);
    // two β=0.5 folds: 0.75 then blend(0.75, 0.25) etc — all dyadic
    let r2 = engine.record(2, TaskId(1)).expect("observed record");
    assert_eq!((r2.s_hat, r2.g_hat, r2.d_hat, r2.c_hat), (0.5, 0.25, 0.5, 0.5));
    assert_eq!(r2.interactions, 2);
    assert_eq!(engine.usage_log(3), UsageLog { responsive: 6, abusive: 2 });
    assert_eq!(engine.usage_log(4), UsageLog { responsive: 1, abusive: 0 });
}

/// Replays the *committed* fixture bytes and asserts the pinned state: a
/// format change either keeps reading version-2 chains exactly like this,
/// or bumps [`FORMAT_VERSION`] (and regenerates the fixture via the
/// ignored test below).
#[test]
fn golden_fixture_replays_to_pinned_state() {
    let fixtures = fixture_dir();
    // fixtures are committed; work on a copy so opening never touches them
    let dir = tmpdir("golden");
    fs::create_dir_all(&dir).expect("dir creatable");
    let entries = fs::read_dir(&fixtures)
        .unwrap_or_else(|e| panic!("fixture dir must exist (see generate_golden_fixture): {e}"));
    for entry in entries {
        let entry = entry.expect("entry readable");
        fs::copy(entry.path(), dir.join(entry.file_name())).expect("fixture copies");
    }
    assert!(dir.join(MANIFEST_FILE).exists(), "a v2 fixture pins a manifest");
    let engine: DurableTrustStore<u32> = TrustEngine::open(&dir).expect("fixture opens");
    assert_golden_state(&engine);
    drop(engine);
    fs::remove_dir_all(&dir).expect("scratch removable");
}

/// The fixture's generator — run `cargo test -p siot-core --test
/// persistence -- --ignored generate_golden_fixture` after an *intentional*
/// format-version bump to re-record the files, and commit them.
#[test]
#[ignore = "regenerates the committed golden fixture"]
fn generate_golden_fixture() {
    let dir = fixture_dir();
    let _ = fs::remove_dir_all(&dir);
    write_golden_state(&dir);
    // sanity: the freshly recorded fixture replays to the pinned state
    let engine: DurableTrustStore<u32> = TrustEngine::open(&dir).expect("fixture reopens");
    assert_golden_state(&engine);
}

/// The generator and the pinned assertions agree on today's code, with the
/// round trip running through a scratch dir (so this holds even when the
/// committed fixture is stale in a working tree).
#[test]
fn golden_state_round_trips_today() {
    let dir = tmpdir("golden-today");
    write_golden_state(&dir);
    let engine: DurableTrustStore<u32> = TrustEngine::open(&dir).expect("reopens");
    assert_golden_state(&engine);
    drop(engine);
    fs::remove_dir_all(&dir).expect("scratch removable");
}

// ---------------------------------------------------------------------------
// Legacy (version 1) directories: replay and migration
// ---------------------------------------------------------------------------

/// Copies the committed v1 fixture (`trust.log` + `trust.snap`) into a
/// scratch dir.
fn legacy_scratch(tag: &str) -> PathBuf {
    let fixtures = legacy_fixture_dir();
    let dir = tmpdir(tag);
    fs::create_dir_all(&dir).expect("dir creatable");
    for name in [LOG_FILE, SNAP_FILE] {
        fs::copy(fixtures.join(name), dir.join(name))
            .unwrap_or_else(|e| panic!("committed v1 fixture {name} must exist: {e}"));
    }
    dir
}

/// Opening a version-1 directory replays it under the v1 rules *and*
/// migrates it to a segment chain: the legacy pair is gone, the manifest
/// is in place, and the state survives further reopens through the new
/// format.
#[test]
fn legacy_v1_fixture_migrates_to_segment_chain() {
    let dir = legacy_scratch("legacy-migrate");
    let engine: DurableTrustStore<u32> = TrustEngine::open(&dir).expect("v1 dir opens");
    assert_golden_state(&engine);
    drop(engine);
    assert!(dir.join(MANIFEST_FILE).exists(), "migration committed a manifest");
    assert!(!dir.join(LOG_FILE).exists(), "legacy log removed after migration");
    assert!(!dir.join(SNAP_FILE).exists(), "legacy snapshot removed after migration");
    let engine: DurableTrustStore<u32> = TrustEngine::open(&dir).expect("chain reopens");
    assert_golden_state(&engine);
    drop(engine);
    fs::remove_dir_all(&dir).expect("scratch removable");
}

/// A v1 log that predates the v1 snapshot (crash between the snapshot
/// rename and the log truncation; the generations disagree) is discarded
/// on open: its stale absolute frames must never replay over — and
/// regress — the newer snapshot.
#[test]
fn legacy_stale_pre_snapshot_log_is_discarded() {
    let dir = legacy_scratch("legacy-stale");
    // forge the crash window: rewrite the log's generation stamp (header
    // bytes 6–7) so it no longer matches the snapshot's
    let log = dir.join(LOG_FILE);
    let mut bytes = fs::read(&log).expect("log readable");
    bytes[6] ^= 0xFF;
    fs::write(&log, &bytes).expect("log writable");
    let engine: DurableTrustStore<u32> = TrustEngine::open(&dir).expect("recovers");
    // snapshot-only state: record 2 has seen exactly one fold, and the
    // post-snapshot usage log never existed
    assert_eq!(engine.record_count(), 2);
    let r2 = engine.record(2, TaskId(1)).expect("snapshot record");
    assert_eq!((r2.s_hat, r2.g_hat, r2.d_hat, r2.c_hat), (0.75, 0.5, 0.25, 0.0));
    assert_eq!(r2.interactions, 1, "the stale log's second fold must not replay");
    assert_eq!(engine.usage_log(3), UsageLog { responsive: 6, abusive: 2 });
    assert_eq!(engine.usage_log(4), UsageLog::default(), "post-snapshot frame discarded");
    drop(engine);
    fs::remove_dir_all(&dir).expect("scratch removable");
}

/// v1 snapshots were written atomically, so *any* damage inside one is
/// real corruption — no tail tolerance there.
#[test]
fn legacy_corrupt_snapshot_reports_corrupt() {
    let dir = legacy_scratch("legacy-snapcorrupt");
    let snap = dir.join(SNAP_FILE);
    let mut bytes = fs::read(&snap).expect("snapshot readable");
    bytes[HEADER + 12] ^= 0xFF;
    fs::write(&snap, &bytes).expect("snapshot writable");
    let err = DurableTrustStore::<u32>::open(&dir).expect_err("snapshot damage is fatal");
    assert!(matches!(err, TrustError::Corrupt { what: "snapshot frame", .. }), "got {err:?}");
    fs::remove_dir_all(&dir).expect("scratch removable");
}

/// A v1 crash could tear even the 8-byte header of a just-created log; a
/// torn-header legacy log carries no state and migrates to an empty chain.
#[test]
fn legacy_torn_header_log_carries_no_state() {
    let dir = tmpdir("legacy-torn");
    fs::create_dir_all(&dir).expect("dir creatable");
    fs::write(dir.join(LOG_FILE), b"SIO").expect("torn log writable");
    let engine: DurableTrustStore<u32> = TrustEngine::open(&dir).expect("torn v1 header recovers");
    assert_eq!(engine.record_count(), 0);
    drop(engine);
    let engine: DurableTrustStore<u32> = TrustEngine::open(&dir).expect("migrated chain reopens");
    assert_eq!(engine.record_count(), 0);
    drop(engine);
    fs::remove_dir_all(&dir).expect("scratch removable");
}

// ---------------------------------------------------------------------------
// Group commit: acked means durable
// ---------------------------------------------------------------------------

/// Under [`FsyncPolicy::Always`] every write API returns only after its
/// group-commit barrier's fsync, so a hard crash — simulated by leaking
/// the engine, skipping `Drop`'s flush entirely — loses nothing that was
/// acked. (Also pins the `sync_all` fix: `sync_data` once let the file's
/// size metadata lag, turning acked frames into a torn tail.)
#[test]
fn always_acked_writes_survive_crash_without_flush() {
    let dir = tmpdir("always-crash");
    let task = Task::uniform(TaskId(0), [CharacteristicId(0)]).expect("non-empty");
    let betas = ForgettingFactors::figures();
    let options =
        LogOptions { fsync: FsyncPolicy::Always, compact_every: 0, ..LogOptions::default() };
    {
        let mut engine: DurableTrustStore<u32> =
            TrustEngine::open_with(&dir, options).expect("fresh dir");
        engine.register_task(task.clone());
        for i in 0..40u32 {
            let active = engine
                .delegate(i % 5, &task, Goal::ANY, Context::amicable(task.id()))
                .activate(&engine);
            active
                .execute(&mut engine, DelegationOutcome::succeeded(0.75, 0.125), &betas)
                .expect("in-range outcome");
        }
        std::mem::forget(engine); // crash: no flush, no Drop
    }
    let engine: DurableTrustStore<u32> = TrustEngine::open(&dir).expect("reopen");
    let total: u64 =
        (0..5u32).filter_map(|p| engine.record(p, TaskId(0))).map(|r| r.interactions).sum();
    assert_eq!(total, 40, "every acked session is on disk");
    let logged: u64 = (0..5u32).map(|p| engine.usage_log(p).total()).sum();
    assert_eq!(logged, 40);
    drop(engine);
    fs::remove_dir_all(&dir).expect("scratch removable");
}

/// `commit_batch` returns its receipts only after the one fsync covering
/// the whole drained batch — so returned receipts survive the same
/// no-flush crash.
#[test]
fn batch_receipts_are_durable_once_returned_under_always() {
    let dir = tmpdir("batch-always");
    let task = Task::uniform(TaskId(0), [CharacteristicId(0)]).expect("non-empty");
    let betas = ForgettingFactors::figures();
    let options =
        LogOptions { fsync: FsyncPolicy::Always, compact_every: 0, ..LogOptions::default() };
    {
        let mut engine: DurableTrustStore<u32> =
            TrustEngine::open_with(&dir, options).expect("fresh dir");
        let mut pending = Vec::new();
        for i in 0..12u32 {
            let active = engine
                .delegate(i % 4, &task, Goal::ANY, Context::amicable(task.id()))
                .activate(&engine);
            pending.push(active.finish(DelegationOutcome::succeeded(0.5, 0.25)).expect("in-range"));
        }
        engine.commit_batch(pending, &betas); // one barrier for the slate
        std::mem::forget(engine); // crash: no flush, no Drop
    }
    let engine: DurableTrustStore<u32> = TrustEngine::open(&dir).expect("reopen");
    for p in 0..4u32 {
        assert_eq!(engine.record(p, task.id()).expect("committed").interactions, 3);
        assert_eq!(engine.usage_log(p).responsive, 3);
    }
    drop(engine);
    fs::remove_dir_all(&dir).expect("scratch removable");
}

// ---------------------------------------------------------------------------
// Churn-proportional compaction, end to end
// ---------------------------------------------------------------------------

/// Incremental compaction folds the raw segments into one compacted
/// segment appended to the chain, the folded state survives reopen, and
/// repeated rounds keep the chain bounded.
#[test]
fn churn_compaction_preserves_state_across_reopen() {
    let dir = tmpdir("churn");
    let options = LogOptions { segment_bytes: 256, compact_every: 0, ..LogOptions::default() };
    let mut engine: DurableTrustStore<u32> =
        TrustEngine::open_with(&dir, options).expect("fresh dir");
    for i in 0..30u32 {
        engine.seed_record(i, TaskId(0), rec(i % 8));
    }
    engine.flush().expect("flush succeeds");
    assert!(engine.segments() >= 3, "tiny segment_bytes forced rotations");
    // churn a small hot set, then fold it
    for _ in 0..4 {
        for k in 0..3u32 {
            engine.seed_record(k, TaskId(0), rec(7));
        }
    }
    engine.compact_churned().expect("incremental compaction succeeds");
    assert_eq!(engine.compacted_segments(), 1, "one compacted segment leads the chain");
    assert_eq!(engine.segments(), 2, "raw segments folded away: [compacted, active]");
    drop(engine);
    let mut engine: DurableTrustStore<u32> = TrustEngine::open(&dir).expect("reopen");
    assert_eq!(engine.record_count(), 30);
    for i in 0..30u32 {
        let want = if i < 3 { rec(7) } else { rec(i % 8) };
        assert_eq!(engine.record(i, TaskId(0)), Some(want), "record {i}");
    }
    // a second round on the already-compacted chain appends one more
    // compacted segment and still round-trips
    engine.seed_record(31, TaskId(0), rec(1));
    engine.compact_churned().expect("second incremental compaction succeeds");
    drop(engine);
    let engine: DurableTrustStore<u32> = TrustEngine::open(&dir).expect("second reopen");
    assert_eq!(engine.record_count(), 31);
    assert_eq!(engine.record(31, TaskId(0)), Some(rec(1)));
    drop(engine);
    fs::remove_dir_all(&dir).expect("scratch removable");
}

// ---------------------------------------------------------------------------
// Delegation-lifecycle durability
// ---------------------------------------------------------------------------

/// Execute sessions, drop the engine *without* an explicit flush, reopen:
/// interaction counts and mutuality logs must match exactly — and keep
/// matching as more sessions run, so double-counting on replay is
/// unrepresentable.
#[test]
fn executed_sessions_survive_drop_without_flush() {
    let dir = tmpdir("lifecycle");
    let task = Task::uniform(TaskId(0), [CharacteristicId(0)]).expect("non-empty");
    let betas = ForgettingFactors::figures();
    let run_sessions = |engine: &mut DurableTrustStore<u32>, n: u32, offset: u32| {
        for i in 0..n {
            let peer = (offset + i) % 3;
            let active = engine
                .delegate(peer, &task, Goal::ANY, Context::amicable(task.id()))
                .activate(engine);
            let outcome = if i % 4 == 0 {
                DelegationOutcome::failed(0.5, 0.25).abusive()
            } else {
                DelegationOutcome::succeeded(0.75, 0.125)
            };
            active.execute(engine, outcome, &betas).expect("in-range outcome");
        }
    };

    let (expected_records, expected_logs);
    {
        let mut engine: DurableTrustStore<u32> = TrustEngine::open(&dir).expect("fresh dir");
        engine.register_task(task.clone());
        run_sessions(&mut engine, 20, 0);
        expected_records = (0..3u32).map(|p| engine.record(p, task.id())).collect::<Vec<_>>();
        expected_logs = (0..3u32).map(|p| engine.usage_log(p)).collect::<Vec<_>>();
        // dropped without flush
    }

    let mut engine: DurableTrustStore<u32> = TrustEngine::open(&dir).expect("reopen");
    engine.register_task(task.clone());
    for p in 0..3u32 {
        assert_eq!(engine.record(p, task.id()), expected_records[p as usize], "peer {p}");
        assert_eq!(engine.usage_log(p), expected_logs[p as usize], "peer {p}");
    }
    let total: u64 =
        (0..3u32).filter_map(|p| engine.record(p, task.id())).map(|r| r.interactions).sum();
    assert_eq!(total, 20, "one fold per executed session, nothing replayed twice");
    let logged: u64 = (0..3u32).map(|p| engine.usage_log(p).total()).sum();
    assert_eq!(logged, 20);

    // sessions after recovery continue the same histories
    run_sessions(&mut engine, 5, 1);
    drop(engine);
    let engine: DurableTrustStore<u32> = TrustEngine::open(&dir).expect("second reopen");
    let total: u64 =
        (0..3u32).filter_map(|p| engine.record(p, task.id())).map(|r| r.interactions).sum();
    assert_eq!(total, 25);
    let logged: u64 = (0..3u32).map(|p| engine.usage_log(p).total()).sum();
    assert_eq!(logged, 25);
    drop(engine);
    fs::remove_dir_all(&dir).expect("scratch removable");
}

/// `commit_batch` — the coordinator's slate shape — is just as durable.
#[test]
fn committed_batches_survive_reopen() {
    let dir = tmpdir("batch");
    let task = Task::uniform(TaskId(0), [CharacteristicId(0)]).expect("non-empty");
    let betas = ForgettingFactors::figures();
    {
        let mut engine: DurableTrustStore<u32> = TrustEngine::open(&dir).expect("fresh dir");
        let mut pending = Vec::new();
        for i in 0..12u32 {
            let active = engine
                .delegate(i % 4, &task, Goal::ANY, Context::amicable(task.id()))
                .activate(&engine);
            pending.push(active.finish(DelegationOutcome::succeeded(0.5, 0.25)).expect("in-range"));
        }
        engine.commit_batch(pending, &betas);
    }
    let engine: DurableTrustStore<u32> = TrustEngine::open(&dir).expect("reopen");
    for p in 0..4u32 {
        assert_eq!(engine.record(p, task.id()).expect("committed").interactions, 3);
        assert_eq!(engine.usage_log(p).responsive, 3);
    }
    drop(engine);
    fs::remove_dir_all(&dir).expect("scratch removable");
}

/// Raw `usage_log_mut` edits bypass the journal by design; `flush`
/// re-journals them. Both halves of that contract, pinned.
#[test]
fn raw_usage_log_edits_need_flush() {
    let dir = tmpdir("rawlog");
    {
        let mut engine: DurableTrustStore<u32> = TrustEngine::open(&dir).expect("fresh dir");
        engine.usage_log_mut(9).record_abusive();
        // dropped without flush: the raw edit is lost (documented)
    }
    {
        let engine: DurableTrustStore<u32> = TrustEngine::open(&dir).expect("reopen");
        assert_eq!(engine.usage_log(9), UsageLog::default());
    }
    {
        let mut engine: DurableTrustStore<u32> = TrustEngine::open(&dir).expect("reopen");
        engine.usage_log_mut(9).record_abusive();
        engine.flush().expect("flush succeeds");
    }
    let engine: DurableTrustStore<u32> = TrustEngine::open(&dir).expect("final reopen");
    assert_eq!(engine.usage_log(9).abusive, 1);
    drop(engine);
    fs::remove_dir_all(&dir).expect("scratch removable");
}

#[test]
fn clear_records_is_durable_and_keeps_usage_logs() {
    let dir = tmpdir("clear");
    {
        let mut engine: DurableTrustStore<u32> = TrustEngine::open(&dir).expect("fresh dir");
        engine.seed_record(1, TaskId(0), rec(1));
        engine.seed_usage_log(1, || UsageLog { responsive: 2, abusive: 0 });
        engine.clear_records();
        engine.seed_record(2, TaskId(0), rec(2));
    }
    let engine: DurableTrustStore<u32> = TrustEngine::open(&dir).expect("reopen");
    assert_eq!(engine.record_count(), 1);
    assert!(engine.record(1, TaskId(0)).is_none(), "cleared record stays cleared");
    assert_eq!(engine.record(2, TaskId(0)), Some(rec(2)));
    assert_eq!(engine.usage_log(1).responsive, 2, "clear_records keeps usage logs");
    drop(engine);
    fs::remove_dir_all(&dir).expect("scratch removable");
}

// ---------------------------------------------------------------------------
// Reopen smoke (the CI `persistence` step's fast path)
// ---------------------------------------------------------------------------

#[test]
fn reopen_smoke_tmpdir() {
    let dir = tmpdir("smoke");
    let betas = ForgettingFactors::figures();
    {
        let mut engine: DurableTrustStore<u32> = TrustEngine::open_with(
            &dir,
            LogOptions { fsync: FsyncPolicy::Always, compact_every: 64, ..LogOptions::default() },
        )
        .expect("fresh dir");
        for i in 0..200u32 {
            engine.observe(i % 10, TaskId((i / 10) % 2), &Observation::success(0.5, 0.25), &betas);
        }
    }
    let engine: DurableTrustStore<u32> = TrustEngine::open(&dir).expect("reopen");
    assert_eq!(engine.record_count(), 20);
    assert_eq!(engine.known_peers().len(), 10);
    assert_eq!(engine.record(0, TaskId(0)).expect("warm").interactions, 10);
    assert!(engine.trustworthiness(0, TaskId(0)).expect("warm").value() > 0.5);
    drop(engine);
    fs::remove_dir_all(&dir).expect("scratch removable");
}
