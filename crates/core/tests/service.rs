//! Integration tests for the `TrustService` facade: concurrent handle
//! commits are bit-identical to the sequential `commit_batch` fold, and
//! graceful shutdown loses no acked commit on a durable backend.

use proptest::prelude::*;
use siot_core::backend::TrustBackend;
use siot_core::environment::EnvIndicator;
use siot_core::log_backend::{FsyncPolicy, LogOptions, WriteBehind};
use siot_core::prelude::*;
use siot_core::service::{block_on, ServiceOptions, TrustService};

mod common;
use common::tmpdir;

/// One commit a worker plays: (trustee-in-worker-range, observation,
/// abusive flag, environment).
type Step = (u32, Observation, u32, f64);

fn unit() -> impl Strategy<Value = f64> {
    0.0..=1.0f64
}

fn observation() -> impl Strategy<Value = Observation> {
    (unit(), unit(), unit(), unit()).prop_map(|(s, g, d, c)| Observation {
        success_rate: s,
        gain: g,
        damage: d,
        cost: c,
    })
}

/// Three workers' commit streams. Worker key spaces are disjoint (peer =
/// `worker · 100 + trustee`), so *any* interleaving of the workers must
/// land on the same per-key state as playing the streams sequentially.
fn streams() -> impl Strategy<Value = Vec<Vec<Step>>> {
    prop::collection::vec(
        prop::collection::vec((0u32..5, observation(), 0u32..2, 0.05..=1.0f64), 1..25),
        3..4,
    )
}

fn task() -> Task {
    Task::uniform(TaskId(0), [CharacteristicId(0)]).expect("non-empty task")
}

/// Builds the one-shot wire unit for one step: a committed session
/// finished with the step's outcome (validated at `finish`, like every
/// live interaction).
fn completed(worker: usize, step: &Step) -> CompletedDelegation<u32> {
    let &(trustee, ref obs, abusive, env) = step;
    let t = task();
    let scratch: TrustStore<u32> = TrustStore::new();
    let request = DelegationRequest::new(
        worker as u32 * 100 + trustee,
        &t,
        Goal::ANY,
        Context::new(t.id(), EnvIndicator::new(env).expect("generated in (0, 1]")),
    );
    let outcome = DelegationOutcome::observed(*obs);
    let outcome = if abusive == 1 { outcome.abusive() } else { outcome };
    request.committed().activate(&scratch).finish(outcome).expect("generated in-range")
}

/// Plays every worker stream concurrently through handle clones
/// (pipelined submits, receipts awaited at the end) and returns the
/// engine the shutdown hands back.
fn run_concurrent<B: TrustBackend<u32> + Send + 'static>(
    engine: TrustEngine<u32, B>,
    streams: &[Vec<Step>],
) -> TrustEngine<u32, B> {
    // a deliberately small mailbox so the streams exercise backpressure
    // and multi-drain batching, not one giant drain
    let service =
        TrustService::spawn(engine, ServiceOptions { mailbox: 8, ..ServiceOptions::default() });
    std::thread::scope(|scope| {
        for (worker, stream) in streams.iter().enumerate() {
            let handle = service.handle();
            scope.spawn(move || {
                let pending: Vec<_> =
                    stream.iter().map(|step| handle.submit(completed(worker, step))).collect();
                for p in pending {
                    block_on(p).expect("service alive until every worker finished");
                }
            });
        }
    });
    service.shutdown().expect("clean shutdown")
}

/// The reference: the same commits applied sequentially via
/// `commit_batch`, worker by worker.
fn run_sequential(streams: &[Vec<Step>]) -> TrustStore<u32> {
    let mut engine: TrustStore<u32> = TrustStore::new();
    for (worker, stream) in streams.iter().enumerate() {
        let batch: Vec<_> = stream.iter().map(|step| completed(worker, step)).collect();
        engine.commit_batch(batch, &ServiceOptions::default().betas);
    }
    engine
}

fn bit_identical<A: TrustBackend<u32>, B: TrustBackend<u32>>(
    x: &TrustEngine<u32, A>,
    y: &TrustEngine<u32, B>,
) -> Result<(), TestCaseError> {
    prop_assert_eq!(x.record_count(), y.record_count());
    prop_assert_eq!(x.known_peers(), y.known_peers());
    for peer in x.known_peers() {
        prop_assert_eq!(x.usage_log(peer), y.usage_log(peer));
        let (a, b) = (x.record(peer, TaskId(0)), y.record(peer, TaskId(0)));
        prop_assert_eq!(a.is_some(), b.is_some());
        if let (Some(ra), Some(rb)) = (a, b) {
            prop_assert_eq!(ra.s_hat.to_bits(), rb.s_hat.to_bits());
            prop_assert_eq!(ra.g_hat.to_bits(), rb.g_hat.to_bits());
            prop_assert_eq!(ra.d_hat.to_bits(), rb.d_hat.to_bits());
            prop_assert_eq!(ra.c_hat.to_bits(), rb.c_hat.to_bits());
            prop_assert_eq!(ra.interactions, rb.interactions);
        }
    }
    Ok(())
}

proptest! {
    // every case spawns an actor + three workers; keep the case count sane
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Concurrent handle commits through a BTree-backed service are
    /// bit-identical to the sequential `commit_batch` fold.
    #[test]
    fn service_commits_match_sequential_btree(streams in streams()) {
        let served = run_concurrent(TrustStore::<u32>::new(), &streams);
        let reference = run_sequential(&streams);
        bit_identical(&served, &reference)?;
    }

    /// Same equivalence over the durable `WriteBehind` backend — and the
    /// journal the service's shutdown flushed replays to the same state.
    #[test]
    fn service_commits_match_sequential_writebehind(streams in streams()) {
        let dir = tmpdir("service-wb");
        let backend = WriteBehind::<u32>::open(&dir).expect("scratch dir opens");
        let served = run_concurrent(TrustEngine::with_backend(backend), &streams);
        let reference = run_sequential(&streams);
        bit_identical(&served, &reference)?;

        // reopen what shutdown flushed: the durable state is the state
        drop(served);
        let reopened: TrustEngine<u32, WriteBehind<u32>> =
            TrustEngine::with_backend(WriteBehind::open(&dir).expect("reopens"));
        bit_identical(&reopened, &reference)?;
        std::fs::remove_dir_all(&dir).expect("scratch removable");
    }
}

/// Shutdown drains the mailbox — commits queued but not yet acked when
/// the shutdown command lands are still folded, acked, and flushed — and
/// a `LogBackend` reopened afterward holds every one of them.
#[test]
fn shutdown_drains_queued_commits_and_flushes_durably() {
    let dir = tmpdir("service-drain");
    let n = 300usize;
    {
        let engine: DurableTrustStore<u32> = TrustEngine::open(&dir).expect("fresh dir opens");
        let service = TrustService::spawn(
            engine,
            ServiceOptions { mailbox: 16, ..ServiceOptions::default() },
        );
        let handle = service.handle();
        // queue a pile of commits WITHOUT awaiting any receipt…
        let pending: Vec<_> = (0..n)
            .map(|i| {
                handle
                    .submit(completed(0, &((i % 7) as u32, Observation::success(0.8, 0.1), 0, 1.0)))
            })
            .collect();
        // …then shut down. The drain must fold and ack all of them before
        // the actor exits.
        let engine = service.shutdown().expect("graceful shutdown");
        for p in pending {
            block_on(p).expect("queued commit was drained and acked, not dropped");
        }
        assert_eq!(engine.record_count(), 7);
        let total: u64 = (0..7u32).map(|p| engine.record(p, TaskId(0)).unwrap().interactions).sum();
        assert_eq!(total, n as u64);
    }
    // a fresh process over the same directory: nothing acked was lost
    let recovered: DurableTrustStore<u32> = TrustEngine::open(&dir).expect("reopen recovers");
    assert_eq!(recovered.record_count(), 7);
    let total: u64 = (0..7u32).map(|p| recovered.record(p, TaskId(0)).unwrap().interactions).sum();
    assert_eq!(total, n as u64, "every acked commit survived the restart");
    assert_eq!(
        recovered.usage_log(0).responsive,
        recovered.record(0, TaskId(0)).unwrap().interactions
    );
    drop(recovered);
    std::fs::remove_dir_all(&dir).expect("scratch removable");
}

/// The group-commit ordering guarantee, pinned at the service seam: under
/// [`FsyncPolicy::Always`] the actor releases receipts only *after* the
/// commit barrier's fsync covers the drained batch — so the instant a
/// receipt resolves, its commit is on disk. Snapshotting the chain files
/// at that instant and replaying the copy must show every acked commit;
/// a snapshot raced against still-unacked commits must replay cleanly
/// too — in-flight work is absent or present, never corruption.
#[test]
fn receipts_resolve_only_after_the_covering_fsync() {
    let dir = tmpdir("service-group-commit");
    // no compaction and a huge segment threshold: the manifest is written
    // once at creation, so a live file-by-file snapshot of the directory
    // is equivalent to a crash cut of the active segment
    let options =
        LogOptions { fsync: FsyncPolicy::Always, compact_every: 0, ..LogOptions::default() };
    let engine: DurableTrustStore<u32> =
        TrustEngine::open_with(&dir, options).expect("fresh dir opens");
    let service =
        TrustService::spawn(engine, ServiceOptions { mailbox: 64, ..ServiceOptions::default() });
    let handle = service.handle();

    let snapshot = |tag: &str| {
        let copy = tmpdir(tag);
        std::fs::create_dir_all(&copy).expect("snapshot dir creatable");
        for entry in std::fs::read_dir(&dir).expect("chain dir readable") {
            let entry = entry.expect("entry readable");
            std::fs::copy(entry.path(), copy.join(entry.file_name())).expect("file copies");
        }
        copy
    };
    let interactions = |engine: &DurableTrustStore<u32>| -> u64 {
        (0..6u32).filter_map(|p| engine.record(p, TaskId(0))).map(|r| r.interactions).sum()
    };

    // acked ⇒ durable: every resolved receipt is already covered by a sync
    let pending: Vec<_> = (0..120)
        .map(|i| {
            handle
                .submit(completed(0, &((i % 6) as u32, Observation::success(0.75, 0.125), 0, 1.0)))
        })
        .collect();
    for p in pending {
        block_on(p).expect("service alive for the whole batch");
    }
    let acked = snapshot("service-gc-acked");
    let replayed: DurableTrustStore<u32> =
        TrustEngine::open(&acked).expect("acked snapshot replays");
    assert_eq!(interactions(&replayed), 120, "every resolved receipt was fsynced first");
    drop(replayed);
    std::fs::remove_dir_all(&acked).expect("scratch removable");

    // unacked ⇒ absent or present, never corrupt: race a snapshot against
    // commits whose receipts have not resolved yet
    let pending: Vec<_> = (0..120)
        .map(|i| {
            handle
                .submit(completed(0, &((i % 6) as u32, Observation::success(0.75, 0.125), 0, 1.0)))
        })
        .collect();
    let raced = snapshot("service-gc-raced");
    let replayed: DurableTrustStore<u32> =
        TrustEngine::open(&raced).expect("a raced snapshot replays cleanly, never corrupt");
    let seen = interactions(&replayed);
    assert!((120..=240).contains(&seen), "acked floor, in-flight ceiling: {seen}");
    drop(replayed);
    std::fs::remove_dir_all(&raced).expect("scratch removable");
    for p in pending {
        block_on(p).expect("service alive for the whole batch");
    }

    drop(handle);
    let engine = service.shutdown().expect("clean shutdown");
    assert_eq!(interactions(&engine), 240);
    drop(engine);
    std::fs::remove_dir_all(&dir).expect("scratch removable");
}

/// The drain guarantee also holds when handles simply go away: dropping
/// every handle (no explicit shutdown) still flushes the journal before
/// the detached actor exits.
#[test]
fn dropping_handles_without_shutdown_still_flushes() {
    let dir = tmpdir("service-dropflush");
    let engine: DurableTrustStore<u32> = TrustEngine::open(&dir).expect("fresh dir opens");
    let service = TrustService::spawn(engine, ServiceOptions::default());
    let handle = service.handle();
    block_on(handle.commit(completed(0, &(3, Observation::success(0.9, 0.1), 0, 1.0))))
        .expect("commit acked");
    // no shutdown call: both handles drop, the actor notices, flushes, exits
    drop(handle);
    drop(service);
    // the actor thread is detached, so synchronize on its flush reaching
    // the file (metadata only — opening the dir while the actor still
    // writes would make this test a second writer): the journal's exit
    // flush is the only thing that ever grows the active segment past its
    // header
    let log = dir.join(siot_core::log_backend::segment_file_name(1));
    let header = 8u64;
    let mut last = 0;
    for _ in 0..500 {
        let len = std::fs::metadata(&log).map(|m| m.len()).unwrap_or(0);
        if len > header && len == last {
            break;
        }
        last = len;
        std::thread::sleep(std::time::Duration::from_millis(5));
    }
    let recovered: DurableTrustStore<u32> = TrustEngine::open(&dir).expect("reopen recovers");
    assert_eq!(recovered.record_count(), 1);
    assert_eq!(recovered.record(3, TaskId(0)).unwrap().interactions, 1);
    drop(recovered);
    std::fs::remove_dir_all(&dir).expect("scratch removable");
}
