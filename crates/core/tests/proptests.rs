//! Property-based tests on the trust-model invariants.

use proptest::prelude::*;
use siot_core::backend::TrustBackend;
use siot_core::environment::{cannikin, remove_influence, EnvIndicator};
use siot_core::prelude::*;
use siot_core::record::TrustRecord;

fn unit() -> impl Strategy<Value = f64> {
    0.0..=1.0f64
}

mod common;
use common::tmpdir;

/// One step of the durable-equivalence interleavings: every mutation class
/// the engine exposes — raw observe, env-aware observe, executed sessions
/// (which also advance usage logs), record seeds, and usage-log seeds.
type DurabilityStep = (u32, u32, u32, Observation, f64, u32);

fn durability_steps(max_len: usize) -> impl Strategy<Value = Vec<DurabilityStep>> {
    prop::collection::vec(
        (0u32..5, 0u32..8, 0u32..3, observation(), 0.05..=1.0f64, 0u32..3),
        1..max_len,
    )
}

/// Applies one interleaving to an engine over any backend.
fn apply_durability_steps<B: TrustBackend<u32>>(
    engine: &mut TrustEngine<u32, B>,
    steps: &[DurabilityStep],
    betas: &ForgettingFactors,
) {
    for &(kind, peer, tasknum, ref obs, env, flag) in steps {
        let tid = TaskId(tasknum);
        match kind {
            0 => engine.observe(peer, tid, obs, betas),
            1 => {
                let envs = [EnvIndicator::new(env).expect("generated in (0, 1]")];
                engine.observe_with_environment(peer, tid, obs, &envs, betas);
            }
            2 => {
                let task = Task::uniform(tid, [CharacteristicId(0)]).expect("non-empty");
                let ctx = Context::new(tid, EnvIndicator::new(env).expect("in range"));
                let active = engine.delegate(peer, &task, Goal::ANY, ctx).activate(engine);
                let outcome = DelegationOutcome::observed(*obs);
                let outcome = if flag == 1 { outcome.abusive() } else { outcome };
                active.execute(engine, outcome, betas).expect("generated in-range");
            }
            3 => engine.seed_record(
                peer,
                tid,
                TrustRecord::with_priors(obs.success_rate, obs.gain, obs.damage, obs.cost),
            ),
            _ => {
                engine.seed_usage_log(peer, || UsageLog {
                    responsive: flag as u64,
                    abusive: (flag % 2) as u64,
                });
            }
        }
    }
}

/// Bit-level equality of two engines' records, usage logs, and derived
/// trustworthiness.
fn engines_bit_identical<A: TrustBackend<u32>, B: TrustBackend<u32>>(
    x: &TrustEngine<u32, A>,
    y: &TrustEngine<u32, B>,
) -> Result<(), TestCaseError> {
    prop_assert_eq!(x.record_count(), y.record_count());
    prop_assert_eq!(x.known_peers(), y.known_peers());
    // usage logs can exist for peers without records (seeded-only), so the
    // sweep covers the whole generated peer space, not just known_peers
    for peer in 0..8u32 {
        prop_assert_eq!(x.usage_log(peer), y.usage_log(peer));
        for task in 0..3 {
            let tid = TaskId(task);
            let (a, b) = (x.record(peer, tid), y.record(peer, tid));
            prop_assert_eq!(a.is_some(), b.is_some());
            if let (Some(ra), Some(rb)) = (a, b) {
                prop_assert_eq!(ra.s_hat.to_bits(), rb.s_hat.to_bits());
                prop_assert_eq!(ra.g_hat.to_bits(), rb.g_hat.to_bits());
                prop_assert_eq!(ra.d_hat.to_bits(), rb.d_hat.to_bits());
                prop_assert_eq!(ra.c_hat.to_bits(), rb.c_hat.to_bits());
                prop_assert_eq!(ra.interactions, rb.interactions);
                let ta = x.trustworthiness(peer, tid).expect("record exists").value();
                let tb = y.trustworthiness(peer, tid).expect("record exists").value();
                prop_assert_eq!(ta.to_bits(), tb.to_bits());
            }
        }
    }
    Ok(())
}

fn observation() -> impl Strategy<Value = Observation> {
    (unit(), unit(), unit(), unit()).prop_map(|(s, g, d, c)| Observation {
        success_rate: s,
        gain: g,
        damage: d,
        cost: c,
    })
}

proptest! {
    // ---- Eq. 7 two-hop combiner -------------------------------------

    #[test]
    fn two_hop_closed_on_unit_interval(a in unit(), b in unit()) {
        let t = two_hop(a, b);
        prop_assert!((0.0..=1.0).contains(&t));
    }

    #[test]
    fn two_hop_symmetric(a in unit(), b in unit()) {
        prop_assert!((two_hop(a, b) - two_hop(b, a)).abs() < 1e-12);
    }

    #[test]
    fn two_hop_perfect_link_is_identity(a in unit()) {
        prop_assert!((two_hop(1.0, a) - a).abs() < 1e-12);
    }

    #[test]
    fn two_hop_broken_link_inverts(a in unit()) {
        prop_assert!((two_hop(0.0, a) - (1.0 - a)).abs() < 1e-12);
    }

    #[test]
    fn chain_closed_on_unit_interval(tws in prop::collection::vec(unit(), 0..8)) {
        let t = chain(&tws);
        prop_assert!((0.0..=1.0).contains(&t));
    }

    #[test]
    fn traditional_chain_never_exceeds_eq7_on_distrust(
        a in 0.0..=0.5f64, b in 0.0..=0.5f64
    ) {
        // the mistrust-agreement term only adds information
        prop_assert!(two_hop(a, b) >= traditional_chain(&[a, b]) - 1e-12);
    }

    // ---- EWMA updates (Eqs. 19–22) -----------------------------------

    #[test]
    fn record_components_stay_in_unit_range(
        obs_seq in prop::collection::vec(observation(), 1..30),
        beta in unit(),
    ) {
        let mut rec = TrustRecord::neutral();
        let betas = ForgettingFactors::uniform(beta);
        for obs in &obs_seq {
            rec.update(obs, &betas);
            for v in [rec.s_hat, rec.g_hat, rec.d_hat, rec.c_hat] {
                prop_assert!((0.0..=1.0).contains(&v));
            }
        }
        prop_assert_eq!(rec.interactions, obs_seq.len() as u64);
    }

    #[test]
    fn update_moves_toward_observation(obs in observation(), beta in 0.0..0.999f64) {
        let mut rec = TrustRecord::neutral();
        let before = rec.s_hat;
        rec.update(&obs, &ForgettingFactors::uniform(beta));
        // the new estimate lies between the prior and the observation
        let lo = before.min(obs.success_rate) - 1e-12;
        let hi = before.max(obs.success_rate) + 1e-12;
        prop_assert!(rec.s_hat >= lo && rec.s_hat <= hi);
    }

    #[test]
    fn net_profit_bounded(obs in observation()) {
        let mut rec = TrustRecord::neutral();
        rec.update(&obs, &ForgettingFactors::paper());
        let p = rec.expected_net_profit();
        prop_assert!((-2.0..=1.0).contains(&p));
    }

    // ---- Normalizer (Eq. 18) ------------------------------------------

    #[test]
    fn normalizer_output_in_target_range(raw in -5.0..5.0f64) {
        let u = Normalizer::UNIT.apply(raw);
        prop_assert!((0.0..=1.0).contains(&u));
        let s = Normalizer::SIGNED.apply(raw);
        prop_assert!((-1.0..=1.0).contains(&s));
    }

    #[test]
    fn normalizer_monotone(a in -2.0..=1.0f64, b in -2.0..=1.0f64) {
        let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
        prop_assert!(Normalizer::UNIT.apply(lo) <= Normalizer::UNIT.apply(hi) + 1e-12);
    }

    // ---- Inference (Eq. 4) --------------------------------------------

    #[test]
    fn inference_is_convex_combination(
        tws in prop::collection::vec(unit(), 1..6),
    ) {
        // experienced tasks each with one shared characteristic
        let tasks: Vec<Task> = (0..tws.len())
            .map(|i| {
                Task::uniform(TaskId(i as u32), [CharacteristicId(0), CharacteristicId(i as u32 + 1)])
                    .unwrap()
            })
            .collect();
        let experiences: Vec<Experience> = tasks
            .iter()
            .zip(&tws)
            .map(|(t, &tw)| Experience::new(t, tw))
            .collect();
        let new_task = Task::uniform(TaskId(99), [CharacteristicId(0)]).unwrap();
        let inferred = infer_task(&new_task, &experiences).unwrap();
        let lo = tws.iter().copied().fold(f64::INFINITY, f64::min);
        let hi = tws.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        prop_assert!(inferred >= lo - 1e-9 && inferred <= hi + 1e-9);
    }

    #[test]
    fn task_weights_always_sum_to_one(
        weights in prop::collection::vec(0.01..10.0f64, 1..10)
    ) {
        let task = Task::new(
            TaskId(0),
            weights.iter().enumerate().map(|(i, &w)| (CharacteristicId(i as u32), w)),
        )
        .unwrap();
        let sum: f64 = task.characteristics().iter().map(|&(_, w)| w).sum();
        prop_assert!((sum - 1.0).abs() < 1e-9);
    }

    // ---- Environment removal (Eq. 29) ---------------------------------

    #[test]
    fn removal_closed_and_amplifying(x in unit(), e in 0.05..=1.0f64) {
        let env = [EnvIndicator::new(e).unwrap()];
        let r = remove_influence(x, &env);
        prop_assert!((0.0..=1.0).contains(&r));
        prop_assert!(r >= x - 1e-12, "removal can only credit, not punish");
    }

    #[test]
    fn cannikin_is_min(es in prop::collection::vec(0.05..=1.0f64, 1..6)) {
        let envs: Vec<EnvIndicator> =
            es.iter().map(|&e| EnvIndicator::new(e).unwrap()).collect();
        let m = cannikin(&envs).value();
        let lo = es.iter().copied().fold(f64::INFINITY, f64::min);
        prop_assert!((m - lo).abs() < 1e-12);
    }

    // ---- Mutuality ------------------------------------------------------

    #[test]
    fn reverse_tw_strictly_inside_unit(r in 0u64..500, a in 0u64..500) {
        let log = UsageLog { responsive: r, abusive: a };
        let tw = log.reverse_trustworthiness().value();
        prop_assert!(tw > 0.0 && tw < 1.0, "Laplace smoothing keeps it open");
    }

    #[test]
    fn more_abuse_never_raises_reverse_tw(r in 0u64..100, a in 0u64..100) {
        let base = UsageLog { responsive: r, abusive: a };
        let worse = UsageLog { responsive: r, abusive: a + 1 };
        prop_assert!(
            worse.reverse_trustworthiness().value() <= base.reverse_trustworthiness().value()
        );
    }

    // ---- Storage backends ----------------------------------------------

    #[test]
    fn backends_produce_bit_identical_trustworthiness(
        steps in prop::collection::vec(
            (0u32..12, 0u32..4, observation(), 0.0..=1.0f64, 0u32..2),
            1..60,
        ),
        beta in unit(),
    ) {
        // Any identical sequence of observe / observe_with_environment
        // calls must leave the BTree- and sharded-backed engines with
        // bit-identical state: storage must never touch the arithmetic.
        let mut bt: TrustEngine<u32, BTreeBackend<u32>> = TrustEngine::new();
        let mut sh: TrustEngine<u32, ShardedBackend<u32>> = TrustEngine::new();
        let betas = ForgettingFactors::uniform(beta);
        for &(peer, task, ref obs, env, env_aware) in &steps {
            let tid = TaskId(task);
            if env_aware == 1 {
                let envs = [EnvIndicator::saturating(env)];
                bt.observe_with_environment(peer, tid, obs, &envs, &betas);
                sh.observe_with_environment(peer, tid, obs, &envs, &betas);
            } else {
                bt.observe(peer, tid, obs, &betas);
                sh.observe(peer, tid, obs, &betas);
            }
        }
        prop_assert_eq!(bt.record_count(), sh.record_count());
        prop_assert_eq!(bt.known_peers(), sh.known_peers());
        for peer in bt.known_peers() {
            for task in 0..4 {
                let tid = TaskId(task);
                let (a, b) = (bt.record(peer, tid), sh.record(peer, tid));
                prop_assert_eq!(a.is_some(), b.is_some());
                if let (Some(ra), Some(rb)) = (a, b) {
                    // bit-level equality of every component…
                    prop_assert_eq!(ra.s_hat.to_bits(), rb.s_hat.to_bits());
                    prop_assert_eq!(ra.g_hat.to_bits(), rb.g_hat.to_bits());
                    prop_assert_eq!(ra.d_hat.to_bits(), rb.d_hat.to_bits());
                    prop_assert_eq!(ra.c_hat.to_bits(), rb.c_hat.to_bits());
                    prop_assert_eq!(ra.interactions, rb.interactions);
                    // …and of the derived Eq. 18 value
                    let ta = bt.trustworthiness(peer, tid).unwrap().value();
                    let tb = sh.trustworthiness(peer, tid).unwrap().value();
                    prop_assert_eq!(ta.to_bits(), tb.to_bits());
                }
            }
        }
    }

    #[test]
    fn batched_observe_equals_sequential(
        steps in prop::collection::vec((0u32..8, 0u32..3, observation()), 1..40),
        beta in unit(),
    ) {
        let betas = ForgettingFactors::uniform(beta);
        let batch: Vec<(u32, TaskId, Observation)> =
            steps.iter().map(|&(p, t, ref o)| (p, TaskId(t), *o)).collect();
        let mut seq: TrustEngine<u32, ShardedBackend<u32>> = TrustEngine::new();
        for &(p, t, ref o) in &batch {
            seq.observe(p, t, o, &betas);
        }
        let mut fused: TrustEngine<u32, ShardedBackend<u32>> = TrustEngine::new();
        fused.observe_batch(&batch, &betas).expect("unit-range observations");
        prop_assert_eq!(seq.record_count(), fused.record_count());
        for &(p, t, _) in &batch {
            prop_assert_eq!(seq.record(p, t), fused.record(p, t));
        }
    }

    // ---- Shard-affine pooled folding -----------------------------------

    #[test]
    fn pooled_folding_bit_identical_on_duplicate_keys(
        steps in prop::collection::vec((0u32..6, 0u32..3, observation()), 1..60),
        beta in unit(),
        workers in 1usize..5,
    ) {
        // Keys collide constantly (≤ 18 distinct keys), so the
        // order-sensitive EWMA would expose any cross-worker interleaving
        // of one key's stream. Shard affinity must keep pooled folding
        // bit-identical to sequential `observe` — the guarantee that
        // replaced the old "per-key determinism may differ" caveat.
        let betas = ForgettingFactors::uniform(beta);
        let batch: Vec<(u32, TaskId, Observation)> =
            steps.iter().map(|&(p, t, ref o)| (p, TaskId(t), *o)).collect();

        let mut seq: TrustEngine<u32, ShardedBackend<u32>> = TrustEngine::new();
        for &(p, t, ref o) in &batch {
            seq.observe(p, t, o, &betas);
        }

        // pin both execution strategies, not just whatever Auto resolves
        // to on the test host
        for dispatch in [Dispatch::Workers, Dispatch::Inline] {
            let pool: ObserverPool<u32> = ObserverPool::with_dispatch(workers, dispatch);
            let pooled = std::sync::Arc::new(TrustEngine::<u32, ShardedBackend<u32>>::with_backend(
                ShardedBackend::with_shards_for_writers(workers),
            ));
            pool.observe_batch(&pooled, &batch, &betas).expect("unit-range observations");

            prop_assert_eq!(seq.record_count(), pooled.record_count());
            prop_assert_eq!(seq.known_peers(), pooled.known_peers());
            for &(p, t, _) in &batch {
                let (a, b) = (seq.record(p, t).unwrap(), pooled.record(p, t).unwrap());
                prop_assert_eq!(a.s_hat.to_bits(), b.s_hat.to_bits());
                prop_assert_eq!(a.g_hat.to_bits(), b.g_hat.to_bits());
                prop_assert_eq!(a.d_hat.to_bits(), b.d_hat.to_bits());
                prop_assert_eq!(a.c_hat.to_bits(), b.c_hat.to_bits());
                prop_assert_eq!(a.interactions, b.interactions);
            }
        }
    }

    #[test]
    fn pooled_folding_bit_identical_on_disjoint_keys(
        n in 1u32..300,
        beta in unit(),
        workers in 1usize..5,
    ) {
        // Every (peer, task) key appears exactly once — the insert-heavy
        // cold-store regime. Counts, peers, and record bits must all match
        // sequential folding.
        let betas = ForgettingFactors::uniform(beta);
        let batch: Vec<(u32, TaskId, Observation)> = (0..n)
            .map(|i| {
                (i, TaskId(0), Observation {
                    success_rate: (i % 7) as f64 / 6.0,
                    gain: (i % 5) as f64 / 4.0,
                    damage: (i % 3) as f64 / 2.0,
                    cost: (i % 2) as f64,
                })
            })
            .collect();

        let mut seq: TrustEngine<u32, ShardedBackend<u32>> = TrustEngine::new();
        for &(p, t, ref o) in &batch {
            seq.observe(p, t, o, &betas);
        }

        for dispatch in [Dispatch::Workers, Dispatch::Inline] {
            let pool: ObserverPool<u32> = ObserverPool::with_dispatch(workers, dispatch);
            let pooled = std::sync::Arc::new(TrustEngine::<u32, ShardedBackend<u32>>::with_backend(
                ShardedBackend::with_shards_for_writers(workers),
            ));
            pool.observe_batch(&pooled, &batch, &betas).expect("unit-range observations");

            prop_assert_eq!(seq.record_count() as u32, n);
            prop_assert_eq!(pooled.record_count() as u32, n);
            prop_assert_eq!(seq.known_peers(), pooled.known_peers());
            for &(p, t, _) in &batch {
                prop_assert_eq!(seq.record(p, t), pooled.record(p, t));
            }
        }
    }

    // ---- Delegation-session lifecycle ----------------------------------

    #[test]
    fn session_feedback_equals_raw_observe_on_both_backends(
        steps in prop::collection::vec(
            (0u32..8, 0u32..3, observation(), 0.05..=1.0f64, 0u32..2),
            1..40,
        ),
        beta in unit(),
    ) {
        // One `delegate → evaluate → execute` session must leave the engine
        // bit-identical to the equivalent raw `observe_with_environment` +
        // usage-log calls — on the B-tree AND sharded backends — and fold
        // each outcome exactly once (no double counting).
        fn run_sessions<B: TrustBackend<u32>>(
            steps: &[(u32, u32, Observation, f64, u32)],
            betas: &ForgettingFactors,
        ) -> TrustEngine<u32, B> {
            let mut engine: TrustEngine<u32, B> = TrustEngine::new();
            for &(peer, tasknum, ref obs, env, abusive) in steps {
                let task = Task::uniform(TaskId(tasknum), [CharacteristicId(0)]).unwrap();
                let context = Context::new(task.id(), EnvIndicator::new(env).unwrap());
                let active = engine.delegate(peer, &task, Goal::ANY, context).activate(&engine);
                let outcome = DelegationOutcome::observed(*obs);
                let outcome = if abusive == 1 { outcome.abusive() } else { outcome };
                active.execute(&mut engine, outcome, betas).expect("generated in-range");
            }
            engine
        }
        fn run_raw<B: TrustBackend<u32>>(
            steps: &[(u32, u32, Observation, f64, u32)],
            betas: &ForgettingFactors,
        ) -> TrustEngine<u32, B> {
            let mut engine: TrustEngine<u32, B> = TrustEngine::new();
            for &(peer, tasknum, ref obs, env, abusive) in steps {
                let envs = [EnvIndicator::new(env).unwrap()];
                engine.observe_with_environment(peer, TaskId(tasknum), obs, &envs, betas);
                let log = engine.usage_log_mut(peer);
                if abusive == 1 { log.record_abusive() } else { log.record_responsive() }
            }
            engine
        }

        fn bit_identical<A: TrustBackend<u32>, B: TrustBackend<u32>>(
            x: &TrustEngine<u32, A>,
            y: &TrustEngine<u32, B>,
        ) -> Result<(), TestCaseError> {
            prop_assert_eq!(x.record_count(), y.record_count());
            prop_assert_eq!(x.known_peers(), y.known_peers());
            for peer in x.known_peers() {
                prop_assert_eq!(x.usage_log(peer), y.usage_log(peer));
                for task in 0..3 {
                    let tid = TaskId(task);
                    let (a, b) = (x.record(peer, tid), y.record(peer, tid));
                    prop_assert_eq!(a.is_some(), b.is_some());
                    if let (Some(ra), Some(rb)) = (a, b) {
                        prop_assert_eq!(ra.s_hat.to_bits(), rb.s_hat.to_bits());
                        prop_assert_eq!(ra.g_hat.to_bits(), rb.g_hat.to_bits());
                        prop_assert_eq!(ra.d_hat.to_bits(), rb.d_hat.to_bits());
                        prop_assert_eq!(ra.c_hat.to_bits(), rb.c_hat.to_bits());
                        prop_assert_eq!(ra.interactions, rb.interactions);
                    }
                }
            }
            Ok(())
        }

        let betas = ForgettingFactors::uniform(beta);
        let sess_bt = run_sessions::<BTreeBackend<u32>>(&steps, &betas);
        let raw_bt = run_raw::<BTreeBackend<u32>>(&steps, &betas);
        let sess_sh = run_sessions::<ShardedBackend<u32>>(&steps, &betas);
        let raw_sh = run_raw::<ShardedBackend<u32>>(&steps, &betas);
        bit_identical(&sess_bt, &raw_bt)?;
        bit_identical(&sess_bt, &sess_sh)?;
        bit_identical(&sess_bt, &raw_sh)?;

        // double-count-free: interactions and log totals equal the number
        // of executed sessions, exactly
        let total_interactions: u64 = sess_bt
            .known_peers()
            .iter()
            .flat_map(|&p| (0..3).map(move |t| (p, TaskId(t))))
            .filter_map(|(p, t)| sess_bt.record(p, t))
            .map(|r| r.interactions)
            .sum();
        prop_assert_eq!(total_interactions, steps.len() as u64);
        let total_logged: u64 =
            sess_bt.known_peers().iter().map(|&p| sess_bt.usage_log(p).total()).sum();
        prop_assert_eq!(total_logged, steps.len() as u64);
    }

    #[test]
    fn commit_batch_equals_sequential_execute(
        steps in prop::collection::vec((0u32..6, 0u32..2, observation()), 1..30),
        beta in unit(),
    ) {
        let betas = ForgettingFactors::uniform(beta);
        let task_of = |t: u32| Task::uniform(TaskId(t), [CharacteristicId(0)]).unwrap();

        let mut seq: TrustEngine<u32, ShardedBackend<u32>> = TrustEngine::new();
        let mut batched: TrustEngine<u32, ShardedBackend<u32>> = TrustEngine::new();
        let mut pending = Vec::new();
        for &(peer, t, ref obs) in &steps {
            let task = task_of(t);
            let ctx = Context::amicable(task.id());
            let open = |e: &TrustEngine<u32, ShardedBackend<u32>>| {
                e.delegate(peer, &task, Goal::ANY, ctx).activate(e)
            };
            open(&seq)
                .execute(&mut seq, DelegationOutcome::observed(*obs), &betas)
                .expect("in-range");
            pending.push(
                open(&batched).finish(DelegationOutcome::observed(*obs)).expect("in-range"),
            );
        }
        batched.commit_batch(pending, &betas);

        prop_assert_eq!(seq.record_count(), batched.record_count());
        for peer in seq.known_peers() {
            prop_assert_eq!(seq.usage_log(peer), batched.usage_log(peer));
            for t in 0..2 {
                prop_assert_eq!(seq.record(peer, TaskId(t)), batched.record(peer, TaskId(t)));
            }
        }
    }

    // ---- Durable storage -------------------------------------------------

    #[test]
    fn log_backend_bit_identical_to_btree(
        steps in durability_steps(50),
        beta in unit(),
    ) {
        // Any interleaving of observe / env-observe / session / seed /
        // usage-log ops leaves the durable backend's engine bit-identical
        // to the B-tree engine: journaling must never touch the arithmetic.
        let betas = ForgettingFactors::uniform(beta);
        let mut bt: TrustEngine<u32, BTreeBackend<u32>> = TrustEngine::new();
        let mut lg: TrustEngine<u32, LogBackend<u32>> = TrustEngine::new();
        apply_durability_steps(&mut bt, &steps, &betas);
        apply_durability_steps(&mut lg, &steps, &betas);
        engines_bit_identical(&bt, &lg)?;

        let mut wb: TrustEngine<u32, WriteBehind<u32>> = TrustEngine::new();
        apply_durability_steps(&mut wb, &steps, &betas);
        engines_bit_identical(&bt, &wb)?;
    }
}

proptest! {
    // fewer cases: each runs a full create → close → reopen cycle on disk
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn log_backend_reopen_bit_identical(
        steps in durability_steps(40),
        beta in unit(),
        compact_midway in 0u32..2,
    ) {
        // The same interleaving, but the durable engine is closed (dropped
        // without an explicit flush) and reopened — optionally with a
        // compaction in the middle. Recovery must land on the exact
        // bit-identical state, usage logs included, with nothing
        // double-counted.
        let betas = ForgettingFactors::uniform(beta);
        let mut reference: TrustEngine<u32, BTreeBackend<u32>> = TrustEngine::new();
        apply_durability_steps(&mut reference, &steps, &betas);

        let dir = tmpdir("reopen");
        {
            let mut durable: DurableTrustStore<u32> =
                TrustEngine::open(&dir).expect("fresh dir opens");
            let split = steps.len() / 2;
            apply_durability_steps(&mut durable, &steps[..split], &betas);
            if compact_midway == 1 {
                durable.compact().expect("compaction succeeds");
            }
            apply_durability_steps(&mut durable, &steps[split..], &betas);
            engines_bit_identical(&reference, &durable)?;
            // dropped here: no explicit flush — drop-persistence is part
            // of the contract
        }
        let reopened: DurableTrustStore<u32> =
            TrustEngine::open(&dir).expect("reopen after clean drop");
        engines_bit_identical(&reference, &reopened)?;

        // …and a second cycle stays stable (replay is idempotent)
        drop(reopened);
        let again: DurableTrustStore<u32> = TrustEngine::open(&dir).expect("second reopen");
        engines_bit_identical(&reference, &again)?;
        drop(again);
        std::fs::remove_dir_all(&dir).expect("scratch dir removable");
    }

    #[test]
    fn write_behind_reopen_matches_btree(
        steps in durability_steps(30),
        beta in unit(),
    ) {
        let betas = ForgettingFactors::uniform(beta);
        let mut reference: TrustEngine<u32, BTreeBackend<u32>> = TrustEngine::new();
        apply_durability_steps(&mut reference, &steps, &betas);

        let dir = tmpdir("wb-reopen");
        {
            let backend = WriteBehind::<u32>::open(&dir).expect("fresh dir opens");
            let mut durable: TrustEngine<u32, WriteBehind<u32>> =
                TrustEngine::with_backend(backend);
            apply_durability_steps(&mut durable, &steps, &betas);
        }
        let reopened: TrustEngine<u32, WriteBehind<u32>> =
            TrustEngine::with_backend(WriteBehind::open(&dir).expect("reopen"));
        engines_bit_identical(&reference, &reopened)?;
        drop(reopened);
        std::fs::remove_dir_all(&dir).expect("scratch dir removable");
    }
}
