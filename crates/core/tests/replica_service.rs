//! Integration tests for the epoch-snapshotted read-replica tier
//! (`service::replica` + `Freshness::Snapshot`): snapshot reads taken at
//! an aligned cut are bit-identical to fresh mailbox reads (BTree,
//! WriteBehind, and over the wire), the staleness bound is honored with
//! deterministic fall-through to the mailbox, readers never observe a
//! torn publication under concurrent write load, `QueryMany` batches
//! answer item-for-item like single reads, and read-only broadcasts on a
//! fresh service never force a publication.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use proptest::prelude::*;
use siot_core::environment::EnvIndicator;
use siot_core::log_backend::WriteBehind;
use siot_core::prelude::*;
use siot_core::service::block_on;

mod common;
use common::tmpdir;

/// One commit a worker plays: (trustee-in-worker-range, observation,
/// abusive flag, environment).
type Step = (u32, Observation, u32, f64);

fn unit() -> impl Strategy<Value = f64> {
    0.0..=1.0f64
}

fn observation() -> impl Strategy<Value = Observation> {
    (unit(), unit(), unit(), unit()).prop_map(|(s, g, d, c)| Observation {
        success_rate: s,
        gain: g,
        damage: d,
        cost: c,
    })
}

/// Three workers' commit streams over disjoint key spaces (peer =
/// `worker · 100 + trustee`), as in the other service suites.
fn streams() -> impl Strategy<Value = Vec<Vec<Step>>> {
    prop::collection::vec(
        prop::collection::vec((0u32..5, observation(), 0u32..2, 0.05..=1.0f64), 1..25),
        3..4,
    )
}

fn task() -> Task {
    Task::uniform(TaskId(0), [CharacteristicId(0)]).expect("non-empty task")
}

fn completed(worker: usize, step: &Step) -> CompletedDelegation<u32> {
    let &(trustee, ref obs, abusive, env) = step;
    let t = task();
    let scratch: TrustStore<u32> = TrustStore::new();
    let request = DelegationRequest::new(
        worker as u32 * 100 + trustee,
        &t,
        Goal::ANY,
        Context::new(t.id(), EnvIndicator::new(env).expect("generated in (0, 1]")),
    );
    let outcome = DelegationOutcome::observed(*obs);
    let outcome = if abusive == 1 { outcome.abusive() } else { outcome };
    request.committed().activate(&scratch).finish(outcome).expect("generated in-range")
}

/// A fixed in-range commit for `peer` — the deterministic tests' step.
fn completed_for(peer: u32) -> CompletedDelegation<u32> {
    let t = task();
    let scratch: TrustStore<u32> = TrustStore::new();
    DelegationRequest::new(peer, &t, Goal::ANY, Context::amicable(t.id()))
        .committed()
        .activate(&scratch)
        .finish(DelegationOutcome::observed(Observation {
            success_rate: 0.8,
            gain: 0.6,
            damage: 0.1,
            cost: 0.2,
        }))
        .expect("in-range")
}

fn bits(tw: Option<Trustworthiness>) -> Option<u64> {
    tw.map(|t| t.value().to_bits())
}

fn record_bits(rec: Option<TrustRecord>) -> Option<(u64, u64, u64, u64, u64)> {
    rec.map(|r| {
        (r.s_hat.to_bits(), r.g_hat.to_bits(), r.d_hat.to_bits(), r.c_hat.to_bits(), r.interactions)
    })
}

/// With every commit awaited (so each shard's last mutating drain has
/// published), snapshot reads — through the `Freshness::Snapshot` seam
/// *and* straight off the `ReplicaHandle` — must be bit-identical to
/// fresh mailbox reads at the aligned cut.
fn snapshot_matches_fresh(handle: &ShardedTrustServiceHandle<u32>) -> Result<(), TestCaseError> {
    let fresh_peers = block_on(handle.known_peers_with(Freshness::Aligned)).expect("aligned read");
    let snap_peers =
        block_on(handle.known_peers_with(Freshness::snapshot(0))).expect("snapshot read");
    prop_assert_eq!(&snap_peers, &fresh_peers);

    let replica = handle.replica();
    prop_assert_eq!(replica.max_lag(), 0, "all commits acked, so every shard has published");
    prop_assert_eq!(&replica.known_peers().value, &fresh_peers);

    let fresh_records = block_on(handle.task_records(TaskId(0))).expect("fresh records");
    let snap_records = block_on(handle.task_records_with(TaskId(0), Freshness::snapshot(0)))
        .expect("snapshot records");
    prop_assert_eq!(snap_records.len(), fresh_records.len());
    prop_assert_eq!(replica.task_records(TaskId(0)).value.len(), fresh_records.len());

    for &peer in &fresh_peers {
        let fresh = block_on(handle.record(peer, TaskId(0))).expect("fresh record");
        let snap = block_on(handle.record_with(peer, TaskId(0), Freshness::snapshot(0)))
            .expect("snapshot record");
        prop_assert_eq!(record_bits(snap), record_bits(fresh));
        prop_assert_eq!(record_bits(replica.record(peer, TaskId(0))), record_bits(fresh));

        let fresh_tw = block_on(handle.trustworthiness(peer, TaskId(0))).expect("fresh tw");
        let snap_tw =
            block_on(handle.trustworthiness_with(peer, TaskId(0), Freshness::snapshot(0)))
                .expect("snapshot tw");
        prop_assert_eq!(bits(snap_tw), bits(fresh_tw));
        prop_assert_eq!(bits(replica.trustworthiness(peer, TaskId(0))), bits(fresh_tw));
    }
    Ok(())
}

/// Plays every stream through pipelined batch submits, all awaited.
fn commit_all(handle: &ShardedTrustServiceHandle<u32>, streams: &[Vec<Step>]) {
    for (worker, stream) in streams.iter().enumerate() {
        let batch: Vec<_> = stream.iter().map(|step| completed(worker, step)).collect();
        block_on(handle.submit_batch(batch)).expect("batch commits");
    }
}

proptest! {
    // every case spawns actors (and for the wire case a TCP server); keep
    // the count sane
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Snapshot reads at an aligned cut are bit-identical to fresh
    /// mailbox reads over the in-memory BTree backend, any shard count.
    #[test]
    fn snapshot_reads_match_fresh_btree(streams in streams(), shards in 1usize..=3) {
        let service = ShardedTrustService::spawn_sharded(
            shards,
            ServiceOptions { mailbox: 8, ..ServiceOptions::default() },
            |_| TrustStore::<u32>::new(),
        );
        let handle = service.handle();
        commit_all(&handle, &streams);
        snapshot_matches_fresh(&handle)?;
        service.shutdown().expect("clean shutdown");
    }

    /// Same pin over the durable `WriteBehind` backend — the snapshot is
    /// fed from receipts, so the store's write-behind queue must not skew
    /// what the replica publishes.
    #[test]
    fn snapshot_reads_match_fresh_writebehind(streams in streams()) {
        let root = tmpdir("replica-service-wb");
        let shards = 2usize;
        let service = ShardedTrustService::spawn_sharded(
            shards,
            ServiceOptions { mailbox: 8, ..ServiceOptions::default() },
            |shard| {
                let dir = TrustEngine::<u32, LogBackend<u32>>::shard_dir(&root, shard);
                TrustEngine::with_backend(WriteBehind::open(dir).expect("shard dir opens"))
            },
        );
        let handle = service.handle();
        commit_all(&handle, &streams);
        snapshot_matches_fresh(&handle)?;
        service.shutdown().expect("clean shutdown");
        std::fs::remove_dir_all(&root).expect("scratch removable");
    }

    /// Same pin over the wire: a remote client's snapshot-freshness reads
    /// (answered on the server's reader thread, no actor dispatch) are
    /// bit-identical to its fresh reads, item-for-item — including
    /// `QueryMany` batches against both read paths.
    #[test]
    fn snapshot_reads_match_fresh_over_the_wire(streams in streams()) {
        let service = ShardedTrustService::spawn_sharded(
            2,
            ServiceOptions { mailbox: 8, ..ServiceOptions::default() },
            |_| TrustStore::<u32>::new(),
        );
        let server =
            RemoteTrustServer::bind(("127.0.0.1", 0), service.handle()).expect("loopback bind");
        let remote: RemoteTrustServiceHandle<u32> =
            RemoteTrustServiceHandle::connect(server.local_addr()).expect("loopback connect");
        for (worker, stream) in streams.iter().enumerate() {
            let batch: Vec<_> = stream.iter().map(|step| completed(worker, step)).collect();
            block_on(remote.submit_batch(batch)).expect("batch commits");
        }

        let fresh_peers =
            block_on(remote.known_peers_with(Freshness::Aligned)).expect("aligned peers");
        let snap_peers =
            block_on(remote.known_peers_with(Freshness::snapshot(0))).expect("snapshot peers");
        prop_assert_eq!(&snap_peers, &fresh_peers);

        // one unknown peer rides along: QueryMany must answer None for it
        let mut items: Vec<(u32, TaskId)> =
            fresh_peers.iter().map(|&p| (p, TaskId(0))).collect();
        items.push((9_999_999, TaskId(0)));

        let fresh_tws: Vec<Option<Trustworthiness>> = items
            .iter()
            .map(|&(p, t)| block_on(remote.trustworthiness(p, t)).expect("fresh tw"))
            .collect();
        let many_snap = block_on(remote.trustworthiness_many(items.clone(), Freshness::snapshot(0)))
            .expect("snapshot tw batch");
        let many_relaxed = block_on(remote.trustworthiness_many(items.clone(), Freshness::Relaxed))
            .expect("relaxed tw batch");
        prop_assert_eq!(many_snap.len(), items.len());
        for ((fresh, snap), relaxed) in fresh_tws.iter().zip(&many_snap).zip(&many_relaxed) {
            prop_assert_eq!(bits(*snap), bits(*fresh));
            prop_assert_eq!(bits(*relaxed), bits(*fresh));
        }

        let fresh_recs: Vec<Option<TrustRecord>> = items
            .iter()
            .map(|&(p, t)| block_on(remote.record(p, t)).expect("fresh record"))
            .collect();
        let many_recs = block_on(remote.record_many(items.clone(), Freshness::snapshot(0)))
            .expect("snapshot record batch");
        for (fresh, snap) in fresh_recs.iter().zip(&many_recs) {
            prop_assert_eq!(record_bits(*snap), record_bits(*fresh));
        }

        // an empty batch resolves without a round trip
        prop_assert!(block_on(remote.trustworthiness_many(Vec::new(), Freshness::Relaxed))
            .expect("empty batch")
            .is_empty());

        // the published epoch is observable remotely, next to saturation
        let stats = block_on(remote.shard_stats()).expect("stats");
        prop_assert_eq!(stats.len(), 2);
        for s in &stats {
            prop_assert!(s.published_epoch > 0, "every shard committed, so every shard published");
        }

        server.shutdown();
        service.shutdown().expect("clean shutdown");
    }
}

/// `publish_every > 1` makes staleness deterministic: sequentially
/// awaited commits each occupy one mutating drain, so the published
/// snapshot lags by exactly the number of unpublished drains. A snapshot
/// read within `max_epoch_lag` serves the stale snapshot; one outside it
/// falls through to the fresh mailbox answer. Read-only traffic never
/// changes the lag.
#[test]
fn staleness_bound_honored_and_too_stale_falls_through() {
    let service = TrustService::spawn(
        TrustStore::<u32>::new(),
        ServiceOptions { publish_every: 3, ..ServiceOptions::default() },
    );
    let handle = service.handle();

    // commit 1: one mutating drain, below the publish threshold
    block_on(handle.submit(completed_for(7))).expect("commit 1");
    assert_eq!(block_on(handle.stats()).expect("stats").published_epoch, 0);
    // lag 1 ≤ 16: the (empty, epoch-0) snapshot answers
    assert_eq!(
        block_on(handle.record_with(7, TaskId(0), Freshness::snapshot(16))).expect("read"),
        None,
        "a generous bound accepts the stale pre-commit snapshot"
    );
    // lag 1 > 0: too stale — falls through to the fresh mailbox read
    let fresh = block_on(handle.record_with(7, TaskId(0), Freshness::snapshot(0)))
        .expect("read")
        .expect("fall-through sees the commit");
    assert_eq!(fresh.interactions, 1);
    // read-only traffic advances neither the fold epoch nor the snapshot
    assert_eq!(block_on(handle.stats()).expect("stats").published_epoch, 0);

    // commit 2: lag is now exactly 2
    block_on(handle.submit(completed_for(7))).expect("commit 2");
    assert_eq!(block_on(handle.stats()).expect("stats").published_epoch, 0);
    assert_eq!(
        block_on(handle.record_with(7, TaskId(0), Freshness::snapshot(2))).expect("read"),
        None,
        "max_epoch_lag 2 still accepts the stale snapshot"
    );
    assert_eq!(
        block_on(handle.record_with(7, TaskId(0), Freshness::snapshot(1)))
            .expect("read")
            .expect("lag 2 > 1 falls through fresh")
            .interactions,
        2
    );

    // commit 3: the third mutating drain publishes — lag snaps to 0
    block_on(handle.submit(completed_for(7))).expect("commit 3");
    let stats = block_on(handle.stats()).expect("stats");
    assert!(stats.published_epoch > 0, "third mutating drain published");
    let snap = handle.read_snapshot();
    assert_eq!(snap.epoch(), stats.published_epoch);
    assert_eq!(snap.record(7, TaskId(0)).expect("published").interactions, 3);
    assert_eq!(
        block_on(handle.record_with(7, TaskId(0), Freshness::snapshot(0)))
            .expect("read")
            .expect("snapshot is current")
            .interactions,
        3
    );

    service.shutdown().expect("clean shutdown");
}

/// Publication is an `Arc` swap, never an in-place mutation: under
/// concurrent write load every snapshot a reader grabs is internally
/// consistent (every listed peer fully present), epochs never run
/// backwards, and per-peer interaction counts are monotone across
/// successive grabs.
#[test]
fn readers_never_observe_a_torn_snapshot() {
    let service = TrustService::spawn(
        TrustStore::<u32>::new(),
        ServiceOptions { mailbox: 8, ..ServiceOptions::default() },
    );
    let handle = service.handle();
    let stop = Arc::new(AtomicBool::new(false));
    let commits_per_peer = 80u64;
    let peers: Vec<u32> = (0..6).collect();

    std::thread::scope(|scope| {
        for _ in 0..3 {
            let handle = handle.clone();
            let stop = Arc::clone(&stop);
            scope.spawn(move || {
                let mut last_epoch = 0u64;
                let mut last_seen = 0u64;
                while !stop.load(Ordering::Relaxed) {
                    let snap = handle.read_snapshot();
                    let epoch = snap.epoch();
                    assert!(epoch >= last_epoch, "published epochs never run backwards");
                    let known = snap.known_peers();
                    assert_eq!(
                        snap.record_count(),
                        known.len(),
                        "one task: every peer holds exactly one record"
                    );
                    let mut interactions = 0u64;
                    for &p in &known {
                        let rec = snap.record(p, TaskId(0));
                        assert!(rec.is_some(), "a listed peer is fully present in its snapshot");
                        interactions += rec.expect("just checked").interactions;
                    }
                    assert!(
                        interactions >= last_seen,
                        "total folded interactions are monotone across publications"
                    );
                    last_epoch = epoch;
                    last_seen = interactions;
                }
            });
        }
        // one writer hammers commits in pipelined windows
        for _ in 0..commits_per_peer {
            let pending: Vec<_> = peers.iter().map(|&p| handle.submit(completed_for(p))).collect();
            for p in pending {
                block_on(p).expect("service alive");
            }
        }
        stop.store(true, Ordering::Relaxed);
    });

    // after the last awaited commit the published snapshot is the state
    let snap = handle.read_snapshot();
    assert_eq!(snap.known_peers(), peers);
    for &p in &peers {
        assert_eq!(snap.record(p, TaskId(0)).expect("present").interactions, commits_per_peer);
    }
    service.shutdown().expect("clean shutdown");
}

/// Read-only broadcasts on a fresh service — aligned or snapshot — must
/// not force a publication: the shards have folded nothing, so every
/// published epoch stays 0 and every snapshot stays empty.
#[test]
fn empty_broadcasts_do_not_force_publication() {
    let service = ShardedTrustService::spawn_sharded(3, ServiceOptions::default(), |_| {
        TrustStore::<u32>::new()
    });
    let handle = service.handle();

    assert!(block_on(handle.known_peers_with(Freshness::Aligned)).expect("aligned").is_empty());
    assert!(block_on(handle.task_records_with(TaskId(0), Freshness::Aligned))
        .expect("aligned")
        .is_empty());
    assert!(block_on(handle.known_peers_with(Freshness::snapshot(0)))
        .expect("snapshot")
        .is_empty());

    for stats in block_on(handle.shard_stats()).expect("stats") {
        assert_eq!(stats.published_epoch, 0, "read-only drains never publish");
    }
    let replica = handle.replica();
    assert_eq!(replica.max_lag(), 0, "an idle service is never stale");
    for snap in replica.snapshots() {
        assert_eq!(snap.epoch(), 0);
        assert_eq!(snap.record_count(), 0);
    }

    service.shutdown().expect("clean shutdown");
}
