//! Helpers shared by the integration test binaries.

use std::path::PathBuf;

/// A fresh per-call scratch directory for file-backed backends: unique per
/// process and per call, pre-cleaned, under the OS temp dir. Callers remove
/// it when their test passes (a failing test leaves it behind for autopsy).
pub fn tmpdir(tag: &str) -> PathBuf {
    use std::sync::atomic::{AtomicU64, Ordering};
    static NEXT: AtomicU64 = AtomicU64::new(0);
    let dir = std::env::temp_dir().join(format!(
        "siot-test-{tag}-{}-{}",
        std::process::id(),
        NEXT.fetch_add(1, Ordering::Relaxed)
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}
