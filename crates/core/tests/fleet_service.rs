//! Integration tests for the fault-tolerant fleet tier
//! (`service::fleet`): routing/merge equivalence against the single-node
//! wire tier and the sequential fold, typed connect timeouts against
//! black holes, graceful degradation with one node down, exactly-once
//! commits across a node kill + restart, and a seeded fault-injection
//! sweep where every client future resolves typed or successful and the
//! post-recovery state is bit-identical to the sequential baseline.

use std::net::TcpListener;
use std::time::{Duration, Instant};

use proptest::prelude::*;
use siot_core::backend::TrustBackend;
use siot_core::environment::EnvIndicator;
use siot_core::log_backend::{LogBackend, WriteBehind};
use siot_core::prelude::*;
use siot_core::service::block_on;

mod common;
use common::tmpdir;

/// One commit a worker plays: (trustee-in-worker-range, observation,
/// abusive flag, environment).
type Step = (u32, Observation, u32, f64);

fn unit() -> impl Strategy<Value = f64> {
    0.0..=1.0f64
}

fn observation() -> impl Strategy<Value = Observation> {
    (unit(), unit(), unit(), unit()).prop_map(|(s, g, d, c)| Observation {
        success_rate: s,
        gain: g,
        damage: d,
        cost: c,
    })
}

/// Three workers' commit streams with disjoint peer key spaces, so any
/// interleaving must land on the same per-key state as a sequential fold.
fn streams() -> impl Strategy<Value = Vec<Vec<Step>>> {
    prop::collection::vec(
        prop::collection::vec((0u32..5, observation(), 0u32..2, 0.05..=1.0f64), 1..25),
        3..4,
    )
}

fn task() -> Task {
    Task::uniform(TaskId(0), [CharacteristicId(0)]).expect("non-empty task")
}

fn completed(worker: usize, step: &Step) -> CompletedDelegation<u32> {
    let &(trustee, ref obs, abusive, env) = step;
    let t = task();
    let scratch: TrustStore<u32> = TrustStore::new();
    let request = DelegationRequest::new(
        worker as u32 * 100 + trustee,
        &t,
        Goal::ANY,
        Context::new(t.id(), EnvIndicator::new(env).expect("generated in (0, 1]")),
    );
    let outcome = DelegationOutcome::observed(*obs);
    let outcome = if abusive == 1 { outcome.abusive() } else { outcome };
    request.committed().activate(&scratch).finish(outcome).expect("generated in-range")
}

fn sample_step() -> Step {
    (1, Observation { success_rate: 0.875, gain: 0.5, damage: 0.0, cost: 0.125 }, 0, 1.0)
}

/// A two-node fleet, each node a 2-shard sharded service behind its own
/// TCP server. Returns `(services, servers, fleet)`.
fn spawn_fleet<B, F>(
    make_engine: &F,
) -> (Vec<ShardedTrustService<u32, B>>, Vec<RemoteTrustServer>, FleetTrustHandle<u32>)
where
    B: TrustBackend<u32> + Send + 'static,
    F: Fn(usize, usize) -> TrustEngine<u32, B>,
{
    let services: Vec<_> = (0..2)
        .map(|node| {
            ShardedTrustService::spawn_sharded(
                2,
                ServiceOptions { mailbox: 8, ..ServiceOptions::default() },
                |shard| make_engine(node, shard),
            )
        })
        .collect();
    let servers: Vec<_> = services
        .iter()
        .map(|s| RemoteTrustServer::bind(("127.0.0.1", 0), s.handle()).expect("loopback bind"))
        .collect();
    let addrs: Vec<String> = servers.iter().map(|s| s.local_addr().to_string()).collect();
    let fleet: FleetTrustHandle<u32> = FleetTrustHandle::connect(addrs).expect("fleet connects");
    (services, servers, fleet)
}

/// Plays every worker stream through a clone of the fleet handle
/// (pipelined tagged submits, receipts awaited at the end) and returns
/// the per-node-per-shard engines the local shutdowns hand back, plus
/// the node index each engine group belongs to.
fn run_fleet<B, F>(make_engine: F, streams: &[Vec<Step>]) -> Vec<Vec<TrustEngine<u32, B>>>
where
    B: TrustBackend<u32> + Send + 'static,
    F: Fn(usize, usize) -> TrustEngine<u32, B>,
{
    let (services, servers, fleet) = spawn_fleet(&make_engine);
    std::thread::scope(|scope| {
        for (worker, stream) in streams.iter().enumerate() {
            let fleet = fleet.clone();
            scope.spawn(move || {
                let pending: Vec<_> =
                    stream.iter().map(|step| fleet.submit(completed(worker, step))).collect();
                for p in pending {
                    block_on(p).expect("fleet alive until every worker finished");
                }
            });
        }
    });
    // routing check: every peer landed on the node the public rule names
    for (node, service) in services.iter().enumerate() {
        for peer in block_on(service.handle().known_peers()).expect("live service") {
            assert_eq!(fleet.node_of(peer), node, "peer {peer} on the wrong node");
        }
    }
    for server in servers {
        server.shutdown();
    }
    services.into_iter().map(|s| s.shutdown().expect("clean shutdown")).collect()
}

/// The single-node wire reference: the same streams through one remote
/// handle to one 2-shard service.
fn run_single_remote(streams: &[Vec<Step>]) -> Vec<TrustStore<u32>> {
    let service = ShardedTrustService::spawn_sharded(
        2,
        ServiceOptions { mailbox: 8, ..ServiceOptions::default() },
        |_| TrustStore::<u32>::new(),
    );
    let server =
        RemoteTrustServer::bind(("127.0.0.1", 0), service.handle()).expect("loopback bind");
    let addr = server.local_addr();
    std::thread::scope(|scope| {
        for (worker, stream) in streams.iter().enumerate() {
            scope.spawn(move || {
                let remote: RemoteTrustServiceHandle<u32> =
                    RemoteTrustServiceHandle::connect(addr).expect("loopback connect");
                let pending: Vec<_> =
                    stream.iter().map(|step| remote.submit(completed(worker, step))).collect();
                for p in pending {
                    block_on(p).expect("service alive until every worker finished");
                }
            });
        }
    });
    server.shutdown();
    service.shutdown().expect("clean shutdown")
}

/// The sequential reference: the same commits via `commit_batch`.
fn run_sequential(streams: &[Vec<Step>]) -> TrustStore<u32> {
    let mut engine: TrustStore<u32> = TrustStore::new();
    for (worker, stream) in streams.iter().enumerate() {
        let batch: Vec<_> = stream.iter().map(|step| completed(worker, step)).collect();
        engine.commit_batch(batch, &ServiceOptions::default().betas);
    }
    engine
}

/// The shards, merged, are bit-identical to the reference.
fn shards_bit_identical<A: TrustBackend<u32>, B: TrustBackend<u32>>(
    shards: &[TrustEngine<u32, A>],
    reference: &TrustEngine<u32, B>,
) -> Result<(), TestCaseError> {
    let mut peers: Vec<u32> = shards.iter().flat_map(|e| e.known_peers()).collect();
    peers.sort_unstable();
    prop_assert_eq!(peers, reference.known_peers());
    for shard in shards {
        for peer in shard.known_peers() {
            prop_assert_eq!(shard.usage_log(peer), reference.usage_log(peer));
            let (a, b) = (shard.record(peer, TaskId(0)), reference.record(peer, TaskId(0)));
            prop_assert_eq!(a.is_some(), b.is_some());
            if let (Some(ra), Some(rb)) = (a, b) {
                prop_assert_eq!(ra.s_hat.to_bits(), rb.s_hat.to_bits());
                prop_assert_eq!(ra.g_hat.to_bits(), rb.g_hat.to_bits());
                prop_assert_eq!(ra.d_hat.to_bits(), rb.d_hat.to_bits());
                prop_assert_eq!(ra.c_hat.to_bits(), rb.c_hat.to_bits());
                prop_assert_eq!(ra.interactions, rb.interactions);
            }
        }
    }
    Ok(())
}

proptest! {
    // every case spawns two servers + two sharded fleets + three workers
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Commits through the fleet handle are bit-identical to a
    /// single-node remote handle and to the sequential fold: routing
    /// peers across nodes then shards loses nothing and re-orders no
    /// per-key fold.
    #[test]
    fn fleet_commits_match_single_node_and_sequential(streams in streams()) {
        let per_node = run_fleet(|_, _| TrustStore::<u32>::new(), &streams);
        let merged: Vec<TrustStore<u32>> = per_node.into_iter().flatten().collect();
        prop_assert_eq!(merged.len(), 4); // 2 nodes × 2 shards
        let sequential = run_sequential(&streams);
        shards_bit_identical(&merged, &sequential)?;
        let single = run_single_remote(&streams);
        shards_bit_identical(&single, &sequential)?;
    }

    /// The same equivalence over durable `WriteBehind` shards — and each
    /// node's reopened shard directories replay to the exact state its
    /// actors held when the fleet's workers finished.
    #[test]
    fn fleet_commits_durable_and_reopen(streams in streams()) {
        let root = tmpdir("fleet-service-wb");
        let node_dir = |node: usize| root.join(format!("node{node}"));
        let per_node = run_fleet(
            |node, shard| {
                let dir = TrustEngine::<u32, LogBackend<u32>>::shard_dir(node_dir(node), shard);
                TrustEngine::with_backend(WriteBehind::open(dir).expect("shard dir opens"))
            },
            &streams,
        );
        let merged: Vec<_> = per_node.into_iter().flatten().collect();
        let sequential = run_sequential(&streams);
        shards_bit_identical(&merged, &sequential)?;

        drop(merged);
        let reopened: Vec<TrustEngine<u32, WriteBehind<u32>>> = (0..2)
            .flat_map(|node| (0..2).map(move |shard| (node, shard)))
            .map(|(node, shard)| {
                let dir = TrustEngine::<u32, LogBackend<u32>>::shard_dir(node_dir(node), shard);
                TrustEngine::with_backend(WriteBehind::open(dir).expect("shard dir reopens"))
            })
            .collect();
        shards_bit_identical(&reopened, &sequential)?;
        drop(reopened);
        std::fs::remove_dir_all(&root).expect("scratch removable");
    }
}

/// Options tuned for failure tests: short deadlines, fast backoff.
fn snappy(deadline_ms: u64) -> FleetOptions {
    FleetOptions {
        request_deadline: Duration::from_millis(deadline_ms),
        connect_timeout: Duration::from_millis(250),
        backoff_base: Duration::from_millis(2),
        backoff_cap: Duration::from_millis(40),
        ..FleetOptions::default()
    }
}

/// Connecting to an address that accepts but never speaks — the classic
/// firewall black hole — fails with a typed `TimedOut` inside the budget
/// instead of hanging forever, for the raw remote handle and the fleet
/// alike. A fleet with one live node besides the black hole connects.
#[test]
fn connect_to_a_black_hole_times_out_typed() {
    // the proxy never reaches upstream under BlackHole; any addr will do
    let upstream = TcpListener::bind(("127.0.0.1", 0)).expect("bind");
    let proxy = FaultProxy::start(
        upstream.local_addr().expect("addr"),
        FaultPlan::script(vec![Fault::BlackHole; 4]),
    )
    .expect("proxy starts");
    let hole = proxy.local_addr();

    let start = Instant::now();
    let err = RemoteTrustServiceHandle::<u32>::connect_with(hole, Duration::from_millis(200))
        .expect_err("a black hole cannot complete the handshake");
    assert_eq!(err, TrustError::TimedOut);
    assert!(start.elapsed() < Duration::from_secs(5), "the timeout is the budget, not forever");

    // a fleet of nothing but black holes fails with the same typed error
    let err = FleetTrustHandle::<u32>::connect_opts([hole.to_string()], snappy(500))
        .expect_err("no live node");
    assert_eq!(err, TrustError::TimedOut);

    // one live node besides the hole is enough to connect
    let service = ShardedTrustService::spawn_sharded(2, ServiceOptions::default(), |_| {
        TrustStore::<u32>::new()
    });
    let server =
        RemoteTrustServer::bind(("127.0.0.1", 0), service.handle()).expect("loopback bind");
    let fleet = FleetTrustHandle::<u32>::connect_opts(
        [server.local_addr().to_string(), hole.to_string()],
        snappy(500),
    )
    .expect("one live node is enough");
    assert_eq!(fleet.node_count(), 2);

    proxy.shutdown();
    server.shutdown();
    service.shutdown().expect("clean shutdown");
}

/// With one node down, only its key range degrades — and every failure
/// is typed: reads fail fast with `NodeUnavailable` naming the address,
/// tagged commits wait through backoff and resolve `TimedOut`, and
/// broadcast cuts merge the live node while reporting the dead one.
#[test]
fn down_node_fails_only_its_own_key_range() {
    let service = ShardedTrustService::spawn_sharded(2, ServiceOptions::default(), |_| {
        TrustStore::<u32>::new()
    });
    let server =
        RemoteTrustServer::bind(("127.0.0.1", 0), service.handle()).expect("loopback bind");
    // a port that was bound and released: connects are refused, fast
    let dead_addr = {
        let l = TcpListener::bind(("127.0.0.1", 0)).expect("bind");
        l.local_addr().expect("addr").to_string()
    };

    let fleet = FleetTrustHandle::<u32>::connect_opts(
        [server.local_addr().to_string(), dead_addr.clone()],
        snappy(300),
    )
    .expect("the live node carries the connect");

    // one peer per node, found through the public routing rule
    let on_live = (0..).find(|&p| fleet.node_of(p) == 0).expect("some peer routes to node 0");
    let on_dead = (0..).find(|&p| fleet.node_of(p) == 1).expect("some peer routes to node 1");

    // the live node's key range is a separate failure domain: untouched
    let step = sample_step();
    let mk = |peer: u32| {
        let t = task();
        let scratch: TrustStore<u32> = TrustStore::new();
        DelegationRequest::new(peer, &t, Goal::ANY, Context::amicable(t.id()))
            .committed()
            .activate(&scratch)
            .finish(DelegationOutcome::observed(step.1))
            .expect("in-range")
    };
    block_on(fleet.submit(mk(on_live))).expect("live node commits");
    let record =
        block_on(fleet.record(on_live, TaskId(0))).expect("live node reads").expect("present");
    assert_eq!(record.interactions, 1);

    // reads to the dead node fail fast, naming the address
    match block_on(fleet.record(on_dead, TaskId(0))) {
        Err(TrustError::NodeUnavailable { addr }) => assert_eq!(addr, dead_addr),
        other => panic!("expected NodeUnavailable, got {other:?}"),
    }

    // tagged commits wait through backoff for the node to come back —
    // and resolve typed at the deadline when it does not
    let start = Instant::now();
    assert_eq!(block_on(fleet.submit(mk(on_dead))), Err(TrustError::TimedOut));
    assert!(start.elapsed() >= Duration::from_millis(300), "commits wait out the full deadline");

    // broadcast cuts merge the live node and report the dead one
    let cut = block_on(fleet.known_peers_cut(Freshness::Aligned)).expect("live node answers");
    assert!(!cut.complete());
    assert_eq!(cut.missing, vec![(1usize, dead_addr.clone())]);
    assert_eq!(cut.value, vec![on_live]);
    assert_eq!(cut.epochs.len(), 2);
    assert!(cut.epochs[1].is_empty(), "the dead node has no epoch vector");

    // node stats never fail: the dead node is simply unreachable
    let stats = block_on(fleet.node_stats()).expect("stats are an answer, not an error");
    assert!(stats[0].reachable() && stats[0].saturation().is_some());
    assert!(!stats[1].reachable());
    assert_eq!(stats[1].addr, dead_addr);

    server.shutdown();
    service.shutdown().expect("clean shutdown");
}

/// A proxy that forwards requests but swallows every response: the
/// commit times out typed, the poisoned connection is dropped, and
/// resubmitting the *same* `StampedBatch` over a healthy reconnect
/// replays the receipts of the fold that already happened — one
/// interaction on the record, not two.
#[test]
fn swallowed_responses_time_out_typed_and_replay_on_resubmit() {
    let service = ShardedTrustService::spawn_sharded(2, ServiceOptions::default(), |_| {
        TrustStore::<u32>::new()
    });
    let server =
        RemoteTrustServer::bind(("127.0.0.1", 0), service.handle()).expect("loopback bind");
    let proxy = FaultProxy::start(
        server.local_addr(),
        FaultPlan::script(vec![Fault::DropResponses]), // then healthy
    )
    .expect("proxy starts");

    let fleet =
        FleetTrustHandle::<u32>::connect_opts([proxy.local_addr().to_string()], snappy(400))
            .expect("handshake banner passes the response filter");

    let stamped = fleet.prepare(vec![completed(0, &sample_step())]);
    assert_eq!(stamped.len(), 1);
    // the request reaches the server and folds; the receipt never comes
    assert_eq!(block_on(fleet.submit_prepared(&stamped)), Err(TrustError::TimedOut));

    // same tags, fresh (healthy) connection: the dedup window replays
    let receipts = block_on(fleet.submit_prepared(&stamped)).expect("healthy resubmit");
    assert_eq!(receipts.len(), 1);
    let record =
        block_on(fleet.record(1, TaskId(0))).expect("read").expect("the fold happened once");
    assert_eq!(record.interactions, 1, "a replayed commit never double-counts");

    proxy.shutdown();
    server.shutdown();
    service.shutdown().expect("clean shutdown");
}

/// Kills one node's transport in the middle of a large pipelined tagged
/// commit stream, restarts it on a **new port** with the same
/// `DedupWindow`, and points the fleet at it with `replace_node`. Every
/// submit resolves Ok, and the final state is bit-identical to the
/// sequential fold — zero commits lost, zero double-counted, even
/// though retried chunks crossed the restart.
#[test]
fn killed_node_mid_commit_stream_loses_and_doubles_nothing() {
    let total: usize =
        std::env::var("SIOT_FLEET_COMMITS").ok().and_then(|s| s.parse().ok()).unwrap_or(50_000);
    let batch_size = 1_000;
    let steps: Vec<Step> = (0..total)
        .map(|i| {
            let mut step = sample_step();
            step.0 = (i % 10) as u32;
            step
        })
        .collect();

    let (services, servers, fleet) = spawn_fleet(&|_, _| TrustStore::<u32>::new());
    let fleet = {
        // long deadline: the point is that retries *succeed*, not expire
        let addrs: Vec<String> = (0..2).map(|i| fleet.node_addr(i)).collect();
        drop(fleet);
        FleetTrustHandle::<u32>::connect_opts(
            addrs,
            FleetOptions {
                request_deadline: Duration::from_secs(60),
                backoff_base: Duration::from_millis(2),
                backoff_cap: Duration::from_millis(40),
                ..FleetOptions::default()
            },
        )
        .expect("fleet connects")
    };

    // all batches stamped and on the wire before the node dies
    let stamped: Vec<_> = steps
        .chunks(batch_size)
        .map(|c| fleet.prepare(c.iter().map(|s| completed(0, s)).collect()))
        .collect();
    let pending: Vec<_> = stamped.iter().map(|b| fleet.submit_prepared(b)).collect();

    // kill node 1 mid-stream; restart on a new port with the SAME window
    let mut servers = servers;
    let victim = servers.pop().expect("two servers");
    let survivor = servers.pop().expect("two servers");
    let replacement_endpoint = services[1].handle();
    let killer = {
        let fleet = fleet.clone();
        std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(2));
            let window = victim.dedup_window();
            victim.shutdown(); // kills every connection, receipts in flight
            let reborn =
                RemoteTrustServer::bind_with(("127.0.0.1", 0), replacement_endpoint, window)
                    .expect("rebind on a fresh port");
            fleet.replace_node(1, reborn.local_addr().to_string());
            reborn
        })
    };

    for p in pending {
        let receipts = block_on(p).expect("every batch retried to success across the restart");
        assert_eq!(receipts.len(), batch_size);
    }
    let reborn = killer.join().expect("killer thread");

    // the reference fold of the same logical commits
    let mut sequential: TrustStore<u32> = TrustStore::new();
    sequential.commit_batch(
        steps.iter().map(|s| completed(0, s)).collect(),
        &ServiceOptions::default().betas,
    );

    // exact interaction counts first: the loudest double-count alarm
    for peer in sequential.known_peers() {
        let fleet_rec =
            block_on(fleet.record(peer, TaskId(0))).expect("read").expect("peer committed");
        let seq_rec = sequential.record(peer, TaskId(0)).expect("peer committed");
        assert_eq!(
            fleet_rec.interactions, seq_rec.interactions,
            "peer {peer}: lost or double-counted commits across the restart"
        );
    }

    survivor.shutdown();
    reborn.shutdown();
    let merged: Vec<TrustStore<u32>> =
        services.into_iter().flat_map(|s| s.shutdown().expect("clean shutdown")).collect();
    shards_bit_identical(&merged, &sequential).expect("bit-identical across the restart");
}

/// The acceptance sweep: seeded fault plans (drops, delays, torn frames,
/// closed connections, black holes) between the fleet and its node.
/// Every client future resolves — success or a typed error, never a
/// hang — and after the plan exhausts (the proxy heals), resubmitting
/// the failed `StampedBatch`es converges the fleet to a state
/// bit-identical to the sequential baseline: zero lost, zero doubled.
#[test]
fn seeded_fault_sweeps_resolve_typed_and_converge() {
    for seed in [3u64, 11, 42] {
        let service = ShardedTrustService::spawn_sharded(2, ServiceOptions::default(), |_| {
            TrustStore::<u32>::new()
        });
        let server =
            RemoteTrustServer::bind(("127.0.0.1", 0), service.handle()).expect("loopback bind");
        let proxy = FaultProxy::start(server.local_addr(), FaultPlan::seeded(seed, 5))
            .expect("proxy starts");
        let addr = proxy.local_addr().to_string();

        // connecting itself may hit a fault — every failure is typed and
        // the plan is finite, so connecting in a loop must terminate
        let fleet = loop {
            match FleetTrustHandle::<u32>::connect_opts([addr.clone()], snappy(800)) {
                Ok(fleet) => break fleet,
                Err(TrustError::TimedOut | TrustError::Io(_)) => continue,
                Err(other) => panic!("untyped connect failure: {other:?}"),
            }
        };

        let steps: Vec<Step> = (0..150)
            .map(|i| {
                let mut step = sample_step();
                step.0 = (i % 6) as u32;
                step
            })
            .collect();
        let stamped: Vec<_> = steps
            .chunks(25)
            .map(|c| fleet.prepare(c.iter().map(|s| completed(0, s)).collect()))
            .collect();

        // drive the batches through the faults: Ok or typed error only
        let mut unresolved = Vec::new();
        for batch in &stamped {
            match block_on(fleet.submit_prepared(batch)) {
                Ok(receipts) => assert_eq!(receipts.len(), 25),
                Err(
                    TrustError::TimedOut
                    | TrustError::NodeUnavailable { .. }
                    | TrustError::ServiceStopped
                    | TrustError::Io(_)
                    | TrustError::Corrupt { .. },
                ) => unresolved.push(batch),
                Err(other) => panic!("seed {seed}: unexpected error class: {other:?}"),
            }
        }

        // the plan is exhausted or soon will be; the same tags converge
        for batch in unresolved {
            let mut attempts = 0;
            loop {
                match block_on(fleet.submit_prepared(batch)) {
                    Ok(receipts) => {
                        assert_eq!(receipts.len(), 25);
                        break;
                    }
                    Err(_) if attempts < 20 => attempts += 1,
                    Err(e) => panic!("seed {seed}: batch never converged: {e:?}"),
                }
            }
        }

        // post-recovery: bit-identical to the sequential baseline
        let mut sequential: TrustStore<u32> = TrustStore::new();
        sequential.commit_batch(
            steps.iter().map(|s| completed(0, s)).collect(),
            &ServiceOptions::default().betas,
        );
        proxy.shutdown();
        server.shutdown();
        let merged = service.shutdown().expect("clean shutdown");
        shards_bit_identical(&merged, &sequential)
            .unwrap_or_else(|e| panic!("seed {seed}: lost or doubled commits: {e}"));
    }
}

/// Snapshot-freshness cuts degrade gracefully, not partially: once a
/// node's ranges have been observed, killing the node leaves snapshot
/// cuts **complete** — its key range is served from the fleet handle's
/// stale cache, stamped in `FleetCut::stale` with the epochs the cached
/// answer was taken at — while aligned cuts on the same fleet report the
/// range missing.
#[test]
fn snapshot_cuts_serve_stale_ranges_while_a_node_is_down() {
    let mk_node = || {
        let service = ShardedTrustService::spawn_sharded(1, ServiceOptions::default(), |_| {
            TrustStore::<u32>::new()
        });
        let server =
            RemoteTrustServer::bind(("127.0.0.1", 0), service.handle()).expect("loopback bind");
        (service, server)
    };
    let (svc0, srv0) = mk_node();
    let (svc1, srv1) = mk_node();
    let addr0 = srv0.local_addr().to_string();
    let addr1 = srv1.local_addr().to_string();
    let fleet = FleetTrustHandle::<u32>::connect_opts([addr0, addr1.clone()], snappy(400))
        .expect("connect");

    let on0 = (0..).find(|&p| fleet.node_of(p) == 0).expect("some peer routes to node 0");
    let on1 = (0..).find(|&p| fleet.node_of(p) == 1).expect("some peer routes to node 1");
    let step = sample_step();
    let mk = |peer: u32| {
        let t = task();
        let scratch: TrustStore<u32> = TrustStore::new();
        DelegationRequest::new(peer, &t, Goal::ANY, Context::amicable(t.id()))
            .committed()
            .activate(&scratch)
            .finish(DelegationOutcome::observed(step.1))
            .expect("in-range")
    };
    block_on(fleet.submit(mk(on0))).expect("node 0 commits");
    block_on(fleet.submit(mk(on1))).expect("node 1 commits");

    // both nodes live: the snapshot cuts are fully fresh, and observing
    // them warms the per-node stale cache
    let mut expect = vec![on0, on1];
    expect.sort_unstable();
    let cut = block_on(fleet.known_peers_cut(Freshness::snapshot(64))).expect("live cut");
    assert!(cut.fully_fresh());
    assert_eq!(cut.value, expect);
    let rcut = block_on(fleet.task_records_cut(TaskId(0), Freshness::snapshot(64)))
        .expect("live record cut");
    assert!(rcut.fully_fresh());
    assert_eq!(rcut.value.len(), 2);

    // point snapshot reads forward the freshness over the wire
    let tw = block_on(fleet.trustworthiness_with(on1, TaskId(0), Freshness::snapshot(64)))
        .expect("live snapshot read");
    assert!(tw.is_some());

    // kill node 1
    srv1.shutdown();
    svc1.shutdown().expect("clean node shutdown");

    // an aligned cut degrades: node 1's range is missing
    let aligned = block_on(fleet.known_peers_cut(Freshness::Aligned)).expect("live node answers");
    assert!(!aligned.complete());
    assert_eq!(aligned.value, vec![on0]);

    // the snapshot cut stays complete: node 1's range comes from the
    // stale cache, typed and stamped
    let cut = block_on(fleet.known_peers_cut(Freshness::snapshot(64))).expect("stale-served cut");
    assert!(cut.complete(), "no key range is dropped");
    assert!(!cut.fully_fresh());
    assert_eq!(cut.stale, vec![(1usize, addr1.clone())]);
    assert!(cut.missing.is_empty());
    assert_eq!(cut.value, expect);
    assert!(!cut.epochs[1].is_empty(), "the cached answer keeps its epoch stamp");
    let rcut = block_on(fleet.task_records_cut(TaskId(0), Freshness::snapshot(64)))
        .expect("stale-served record cut");
    assert!(rcut.complete() && !rcut.fully_fresh());
    assert_eq!(rcut.value.len(), 2);

    // relaxed cuts never consult the cache: same failure, range missing
    let relaxed = block_on(fleet.known_peers_cut(Freshness::Relaxed)).expect("live node answers");
    assert!(!relaxed.complete());

    srv0.shutdown();
    svc0.shutdown().expect("clean shutdown");
}
