//! Integration tests for the sharded service tier: commits routed through
//! any shard count are bit-identical to the single-actor service and to
//! the sequential `commit_batch` fold; per-shard durable directories
//! survive shutdown; broadcast merges equal the unsharded union; and a
//! stopped shard surfaces a typed error, never a partial silent merge.

use proptest::prelude::*;
use siot_core::backend::TrustBackend;
use siot_core::environment::EnvIndicator;
use siot_core::log_backend::WriteBehind;
use siot_core::prelude::*;
use siot_core::service::{block_on, ServiceOptions, TrustService};

mod common;
use common::tmpdir;

/// One commit a worker plays: (trustee-in-worker-range, observation,
/// abusive flag, environment).
type Step = (u32, Observation, u32, f64);

fn unit() -> impl Strategy<Value = f64> {
    0.0..=1.0f64
}

fn observation() -> impl Strategy<Value = Observation> {
    (unit(), unit(), unit(), unit()).prop_map(|(s, g, d, c)| Observation {
        success_rate: s,
        gain: g,
        damage: d,
        cost: c,
    })
}

/// Three workers' commit streams over disjoint key spaces (peer =
/// `worker · 100 + trustee`), as in the single-actor suite — any
/// interleaving must land on the same per-key state as sequential play.
fn streams() -> impl Strategy<Value = Vec<Vec<Step>>> {
    prop::collection::vec(
        prop::collection::vec((0u32..5, observation(), 0u32..2, 0.05..=1.0f64), 1..25),
        3..4,
    )
}

fn task() -> Task {
    Task::uniform(TaskId(0), [CharacteristicId(0)]).expect("non-empty task")
}

fn completed(worker: usize, step: &Step) -> CompletedDelegation<u32> {
    let &(trustee, ref obs, abusive, env) = step;
    let t = task();
    let scratch: TrustStore<u32> = TrustStore::new();
    let request = DelegationRequest::new(
        worker as u32 * 100 + trustee,
        &t,
        Goal::ANY,
        Context::new(t.id(), EnvIndicator::new(env).expect("generated in (0, 1]")),
    );
    let outcome = DelegationOutcome::observed(*obs);
    let outcome = if abusive == 1 { outcome.abusive() } else { outcome };
    request.committed().activate(&scratch).finish(outcome).expect("generated in-range")
}

/// Plays every worker stream concurrently through routing-handle clones
/// (pipelined submits, receipts awaited at the end) and returns the
/// per-shard engines the shutdown hands back.
fn run_sharded<B, F>(
    shards: usize,
    make_engine: F,
    streams: &[Vec<Step>],
) -> Vec<TrustEngine<u32, B>>
where
    B: TrustBackend<u32> + Send + 'static,
    F: FnMut(usize) -> TrustEngine<u32, B>,
{
    // a deliberately small mailbox so the streams exercise backpressure
    // and multi-drain batching on every shard
    let service = ShardedTrustService::spawn_sharded(
        shards,
        ServiceOptions { mailbox: 8, ..ServiceOptions::default() },
        make_engine,
    );
    std::thread::scope(|scope| {
        for (worker, stream) in streams.iter().enumerate() {
            let handle = service.handle();
            scope.spawn(move || {
                let pending: Vec<_> =
                    stream.iter().map(|step| handle.submit(completed(worker, step))).collect();
                for p in pending {
                    block_on(p).expect("shards alive until every worker finished");
                }
            });
        }
    });
    service.shutdown().expect("clean shutdown")
}

/// The single-actor reference: the same streams through one `TrustService`.
fn run_single_actor(streams: &[Vec<Step>]) -> TrustStore<u32> {
    let service = TrustService::spawn(
        TrustStore::<u32>::new(),
        ServiceOptions { mailbox: 8, ..ServiceOptions::default() },
    );
    std::thread::scope(|scope| {
        for (worker, stream) in streams.iter().enumerate() {
            let handle = service.handle();
            scope.spawn(move || {
                let pending: Vec<_> =
                    stream.iter().map(|step| handle.submit(completed(worker, step))).collect();
                for p in pending {
                    block_on(p).expect("service alive");
                }
            });
        }
    });
    service.shutdown().expect("clean shutdown")
}

/// The sequential reference: the same commits via `commit_batch`.
fn run_sequential(streams: &[Vec<Step>]) -> TrustStore<u32> {
    let mut engine: TrustStore<u32> = TrustStore::new();
    for (worker, stream) in streams.iter().enumerate() {
        let batch: Vec<_> = stream.iter().map(|step| completed(worker, step)).collect();
        engine.commit_batch(batch, &ServiceOptions::default().betas);
    }
    engine
}

/// The sharded fleet, merged, is bit-identical to the reference: same
/// peers overall, and per peer the same usage log and the same record to
/// the last mantissa bit.
fn shards_bit_identical<A: TrustBackend<u32>, B: TrustBackend<u32>>(
    shards: &[TrustEngine<u32, A>],
    reference: &TrustEngine<u32, B>,
) -> Result<(), TestCaseError> {
    let mut peers: Vec<u32> = shards.iter().flat_map(|e| e.known_peers()).collect();
    peers.sort_unstable();
    prop_assert_eq!(peers, reference.known_peers());
    prop_assert_eq!(
        shards.iter().map(|e| e.record_count()).sum::<usize>(),
        reference.record_count()
    );
    for shard in shards {
        for peer in shard.known_peers() {
            prop_assert_eq!(shard.usage_log(peer), reference.usage_log(peer));
            let (a, b) = (shard.record(peer, TaskId(0)), reference.record(peer, TaskId(0)));
            prop_assert_eq!(a.is_some(), b.is_some());
            if let (Some(ra), Some(rb)) = (a, b) {
                prop_assert_eq!(ra.s_hat.to_bits(), rb.s_hat.to_bits());
                prop_assert_eq!(ra.g_hat.to_bits(), rb.g_hat.to_bits());
                prop_assert_eq!(ra.d_hat.to_bits(), rb.d_hat.to_bits());
                prop_assert_eq!(ra.c_hat.to_bits(), rb.c_hat.to_bits());
                prop_assert_eq!(ra.interactions, rb.interactions);
            }
        }
    }
    Ok(())
}

proptest! {
    // every case spawns up to 4 actors + three workers; keep the count sane
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Concurrent commits through any shard count are bit-identical to the
    /// single-actor service and to the sequential fold (BTree backend).
    #[test]
    fn sharded_commits_match_single_actor_and_sequential_btree(
        streams in streams(),
        shards in 1usize..=4,
    ) {
        let fleet = run_sharded(shards, |_| TrustStore::<u32>::new(), &streams);
        prop_assert_eq!(fleet.len(), shards);
        let single = run_single_actor(&streams);
        let sequential = run_sequential(&streams);
        shards_bit_identical(&fleet, &single)?;
        shards_bit_identical(&fleet, &sequential)?;
    }

    /// Same equivalence over the durable `WriteBehind` backend, one journal
    /// directory per shard — and each reopened shard directory replays to
    /// the exact state its actor held at shutdown.
    #[test]
    fn sharded_commits_match_sequential_writebehind_and_reopen(
        streams in streams(),
        shards in 2usize..=4,
    ) {
        let root = tmpdir("sharded-service-wb");
        let fleet = run_sharded(
            shards,
            |shard| {
                let dir = TrustEngine::<u32, LogBackend<u32>>::shard_dir(&root, shard);
                TrustEngine::with_backend(WriteBehind::open(dir).expect("shard dir opens"))
            },
            &streams,
        );
        let sequential = run_sequential(&streams);
        shards_bit_identical(&fleet, &sequential)?;

        // reopen every shard directory: the durable state is the state
        drop(fleet);
        let reopened: Vec<TrustEngine<u32, WriteBehind<u32>>> = (0..shards)
            .map(|shard| {
                let dir = TrustEngine::<u32, LogBackend<u32>>::shard_dir(&root, shard);
                TrustEngine::with_backend(WriteBehind::open(dir).expect("shard dir reopens"))
            })
            .collect();
        shards_bit_identical(&reopened, &sequential)?;
        drop(reopened);
        std::fs::remove_dir_all(&root).expect("scratch removable");
    }
}

/// `TrustEngine::open_shard` gives each shard its own `LogBackend`
/// directory under one root; after shutdown, reopening with the same
/// shard count recovers every shard's exact records — including through
/// the `try_spawn_sharded` fallible-construction path.
#[test]
fn durable_per_shard_dirs_reopen_after_shutdown() {
    let root = tmpdir("sharded-service-log");
    let shards = 3usize;
    let t = task();
    let n = 120u32;
    {
        let service: ShardedTrustService<u32, LogBackend<u32>> =
            ShardedTrustService::try_spawn_sharded(shards, ServiceOptions::default(), |shard| {
                TrustEngine::open_shard(&root, shard)
            })
            .expect("fresh shard dirs open");
        let handle = service.handle();
        let batch: Vec<_> = (0..n).map(completed_for).collect();
        block_on(handle.submit_batch(batch)).expect("batch committed");
        service.shutdown().expect("graceful shutdown flushes every shard");
    }
    // a fresh process over the same root and the same shard count: every
    // peer is exactly where the router left it
    let service: ShardedTrustService<u32, LogBackend<u32>> =
        ShardedTrustService::try_spawn_sharded(shards, ServiceOptions::default(), |shard| {
            TrustEngine::open_shard(&root, shard)
        })
        .expect("shard dirs reopen");
    let handle = service.handle();
    block_on(async {
        let peers = handle.known_peers().await.expect("all shards alive");
        assert_eq!(peers.len(), n as usize);
        for peer in peers {
            let record = handle.record(peer, t.id()).await.expect("shard alive");
            assert_eq!(record.expect("recovered").interactions, 1);
        }
    });
    let engines = service.shutdown().expect("clean shutdown");
    assert_eq!(engines.iter().map(|e| e.record_count()).sum::<usize>(), n as usize);
    drop(engines);
    std::fs::remove_dir_all(&root).expect("scratch removable");
}

/// Builds a completion for an explicit peer id (the `completed` helper
/// derives the peer from worker + step; the broadcast and durable tests
/// want direct control).
fn completed_for(peer: u32) -> CompletedDelegation<u32> {
    let t = task();
    let scratch: TrustStore<u32> = TrustStore::new();
    DelegationRequest::new(peer, &t, Goal::ANY, Context::amicable(t.id()))
        .committed()
        .activate(&scratch)
        .finish(DelegationOutcome::succeeded(0.9, 0.1))
        .expect("in-range")
}

/// Fan-out merge: `known_peers` / `task_records` over a sharded service
/// equal the union an unsharded engine fed the same sessions holds —
/// under both freshness modes.
#[test]
fn fanout_merge_equals_unsharded_union() {
    let peers: Vec<u32> = (0..50u32).map(|i| i * 7 + 1).collect();

    // the unsharded reference engine, fed the same sessions
    let mut reference: TrustStore<u32> = TrustStore::new();
    reference.register_task(task());
    reference.commit_batch(
        peers.iter().map(|&p| completed_for(p)).collect(),
        &ServiceOptions::default().betas,
    );

    let service = ShardedTrustService::spawn_sharded(4, ServiceOptions::default(), |_| {
        let mut engine: TrustStore<u32> = TrustStore::new();
        engine.register_task(task());
        engine
    });
    let handle = service.handle();
    block_on(async {
        handle
            .submit_batch(peers.iter().map(|&p| completed_for(p)).collect())
            .await
            .expect("all shards alive");
        for freshness in [Freshness::Relaxed, Freshness::Aligned] {
            let merged = handle.known_peers_with(freshness).await.expect("all shards alive");
            assert_eq!(merged, reference.known_peers(), "{freshness:?}");
            let records = handle.task_records_with(task().id(), freshness).await.unwrap();
            let expected: Vec<(u32, TrustRecord)> = reference
                .known_peers()
                .into_iter()
                .map(|p| (p, reference.record(p, task().id()).unwrap()))
                .collect();
            assert_eq!(records, expected, "{freshness:?}");
        }
    });
    service.shutdown().expect("clean shutdown");
}

/// A shard stopped mid-service surfaces the typed
/// `TrustError::ServiceStopped` from broadcasts — under both freshness
/// modes, without hanging the live shards — while peer-targeted traffic to
/// the surviving shards keeps working.
#[test]
fn stopped_shard_fails_broadcasts_typed_not_partial() {
    let service = ShardedTrustService::spawn_sharded(3, ServiceOptions::default(), |_| {
        let mut engine: TrustStore<u32> = TrustStore::new();
        engine.register_task(task());
        engine
    });
    let handle = service.handle();
    block_on(async {
        handle
            .submit_batch((0..30u32).map(completed_for).collect())
            .await
            .expect("all shards alive");

        // stop exactly one shard through the test escape hatch
        service.shard_handle(1).shutdown().await.expect("shard 1 stops cleanly");

        // broadcasts refuse to merge partially — typed error, no hang,
        // under both consistency modes
        for freshness in [Freshness::Relaxed, Freshness::Aligned] {
            let err = handle.known_peers_with(freshness).await.unwrap_err();
            assert_eq!(err, TrustError::ServiceStopped, "{freshness:?}");
            let err = handle.task_records_with(task().id(), freshness).await.unwrap_err();
            assert_eq!(err, TrustError::ServiceStopped, "{freshness:?}");
        }
        assert_eq!(handle.shard_stats().await.unwrap_err(), TrustError::ServiceStopped);

        // peers owned by live shards still commit and read fine
        let live_peer =
            (0..100u32).find(|&p| handle.shard_of(p) != 1).expect("some peer off shard 1");
        handle.commit(completed_for(live_peer)).await.expect("live shard still serves");
        assert!(handle.record(live_peer, task().id()).await.unwrap().is_some());

        // a batch touching the dead shard fails typed too
        let dead_peer = (0..100u32).find(|&p| handle.shard_of(p) == 1).expect("some peer on 1");
        let err = handle.submit_batch(vec![completed_for(dead_peer)]).await.unwrap_err();
        assert_eq!(err, TrustError::ServiceStopped);
    });
    // fleet shutdown tolerates the already-stopped shard
    let engines = service.shutdown().expect("surviving shards drain");
    assert_eq!(engines.len(), 3);
}
