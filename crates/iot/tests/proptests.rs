//! Property-based tests for the discrete-event substrate.

use proptest::prelude::*;
use siot_core::task::TaskId;
use siot_iot::event::{Event, EventQueue};
use siot_iot::stack::aps::Reassembly;
use siot_iot::{DeviceId, SimTime};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    // ---- APS reassembly never panics, completes iff all parts arrive ----

    #[test]
    fn reassembly_is_robust(
        fragments in prop::collection::vec((0u32..3, 0u16..6, 0u16..6, 0.0..1.0f64), 0..60)
    ) {
        let mut r = Reassembly::new();
        for (peer, index, total, quality) in fragments {
            let _ = r.accept(peer, TaskId(0), index, total, quality);
        }
        // pending buffers are bounded by the distinct (peer, task) pairs
        prop_assert!(r.pending() <= 3);
    }

    #[test]
    fn reassembly_completes_exactly_once(total in 1u16..8, seed in 0u64..100) {
        use rand::seq::SliceRandom;
        use rand::SeedableRng;
        let mut order: Vec<u16> = (0..total).collect();
        order.shuffle(&mut rand::rngs::SmallRng::seed_from_u64(seed));
        let mut r = Reassembly::new();
        let mut completions = 0;
        for &i in &order {
            if r.accept(1, TaskId(0), i, total, 0.7).is_some() {
                completions += 1;
            }
        }
        prop_assert_eq!(completions, 1, "exactly one completion per full set");
        prop_assert_eq!(r.pending(), 0);
    }

    // ---- event queue is a stable priority queue ---------------------------

    #[test]
    fn event_queue_orders_by_time_then_insertion(
        times in prop::collection::vec(0u64..1000, 1..80)
    ) {
        let mut q = EventQueue::new();
        for (i, &t) in times.iter().enumerate() {
            q.schedule(
                SimTime::micros(t),
                Event::Timer { device: DeviceId(0), key: i as u64 },
            );
        }
        let mut last: Option<(SimTime, u64)> = None;
        while let Some((at, Event::Timer { key, .. })) = q.pop() {
            if let Some((lt, lk)) = last {
                prop_assert!(at >= lt);
                if at == lt {
                    prop_assert!(key > lk, "FIFO among simultaneous events");
                }
            }
            last = Some((at, key));
        }
        prop_assert!(q.is_empty());
    }

    // ---- time arithmetic ---------------------------------------------------

    #[test]
    fn simtime_arithmetic_consistent(a in 0u64..1_000_000, b in 0u64..1_000_000) {
        let (ta, tb) = (SimTime::micros(a), SimTime::micros(b));
        prop_assert_eq!((ta + tb).as_micros(), a + b);
        prop_assert_eq!((ta - tb).as_micros(), a.saturating_sub(b));
        prop_assert_eq!(ta < tb, a < b);
    }
}
