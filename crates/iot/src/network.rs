//! The discrete-event network engine.
//!
//! Owns the devices, the event queue, the radio/MAC models and the
//! applications. Unicasts get airtime and per-attempt loss with MAC
//! retries; every microsecond of radio activity is charged to the device's
//! active time and energy — the quantities Fig. 14 reports.

use crate::device::{Device, DeviceId, DeviceKind};
use crate::energy;
use crate::event::{Event, EventQueue};
use crate::frame::{Frame, Payload};
use crate::radio::RadioModel;
use crate::stack::mac::MacPolicy;
use crate::time::SimTime;
use rand::rngs::SmallRng;
use rand::SeedableRng;
use std::any::Any;

/// A device application: reacts to frames and timers.
///
/// Applications must be `Any` so experiments can downcast and read their
/// final state.
pub trait Application: Any {
    /// Called once when the network starts.
    fn on_start(&mut self, _ctx: &mut Ctx<'_>) {}
    /// Called when a frame addressed to this device arrives.
    fn on_frame(&mut self, _ctx: &mut Ctx<'_>, _frame: &Frame) {}
    /// Called when one of this device's timers fires.
    fn on_timer(&mut self, _ctx: &mut Ctx<'_>, _key: u64) {}
    /// Upcast for experiment-side downcasting.
    fn as_any(&self) -> &dyn Any;
}

/// Per-callback context handed to applications.
pub struct Ctx<'a> {
    /// Current virtual time.
    pub now: SimTime,
    /// The device this application runs on.
    pub self_id: DeviceId,
    light: f64,
    queue: &'a mut EventQueue,
    devices: &'a mut [Device],
    rng: &'a mut SmallRng,
    radio: &'a RadioModel,
    mac: &'a MacPolicy,
    next_seq: &'a mut u64,
}

impl Ctx<'_> {
    /// Sends a unicast frame (asynchronous; delivery follows MAC timing).
    pub fn send(&mut self, dst: DeviceId, payload: Payload) {
        let frame = Frame { src: self.self_id, dst, payload, seq: *self.next_seq };
        *self.next_seq += 1;
        let backoff = self.mac.backoff(0, self.rng);
        let airtime = self.radio.airtime(&frame);
        let stats = &mut self.devices[self.self_id.index()].stats;
        stats.tx_time += airtime;
        stats.energy_uj += energy::tx_energy(airtime);
        stats.frames_sent += 1;
        self.queue.schedule(self.now + backoff + airtime, Event::Deliver { frame, attempt: 0 });
    }

    /// Arms a timer that fires `delay` from now with the given key.
    pub fn set_timer(&mut self, delay: SimTime, key: u64) {
        self.queue.schedule(self.now + delay, Event::Timer { device: self.self_id, key });
    }

    /// The current ambient light level in `(0, 1]` (optical sensors).
    pub fn light(&self) -> f64 {
        self.light
    }

    /// The shared deterministic RNG.
    pub fn rng(&mut self) -> &mut SmallRng {
        self.rng
    }

    /// Read-only device table (positions, stats).
    pub fn device(&self, id: DeviceId) -> &Device {
        &self.devices[id.index()]
    }
}

/// The simulated IoT network.
pub struct IotNetwork {
    devices: Vec<Device>,
    apps: Vec<Option<Box<dyn Application>>>,
    queue: EventQueue,
    rng: SmallRng,
    radio: RadioModel,
    mac: MacPolicy,
    now: SimTime,
    next_seq: u64,
    /// `(from_time, light)` change points, sorted; light defaults to 1.0.
    light_schedule: Vec<(SimTime, f64)>,
}

impl IotNetwork {
    /// An empty network with default radio/MAC models.
    pub fn new(seed: u64) -> Self {
        IotNetwork {
            devices: Vec::new(),
            apps: Vec::new(),
            queue: EventQueue::new(),
            rng: SmallRng::seed_from_u64(seed),
            radio: RadioModel::default(),
            mac: MacPolicy::default(),
            now: SimTime::ZERO,
            next_seq: 0,
            light_schedule: Vec::new(),
        }
    }

    /// Overrides the radio model (tests use lossless radios).
    pub fn set_radio(&mut self, radio: RadioModel) {
        self.radio = radio;
    }

    /// Installs a light schedule: `(from_time, level)` change points.
    pub fn set_light_schedule(&mut self, mut schedule: Vec<(SimTime, f64)>) {
        schedule.sort_by_key(|&(t, _)| t);
        self.light_schedule = schedule;
    }

    fn light_at(&self, t: SimTime) -> f64 {
        let mut level = 1.0;
        for &(from, l) in &self.light_schedule {
            if from <= t {
                level = l;
            } else {
                break;
            }
        }
        level
    }

    /// Adds a device with its application; returns its id.
    pub fn add_device(
        &mut self,
        kind: DeviceKind,
        position: (f64, f64),
        app: Box<dyn Application>,
    ) -> DeviceId {
        let id = DeviceId(self.devices.len() as u32);
        self.devices.push(Device::new(id, kind, position));
        self.apps.push(Some(app));
        id
    }

    /// Starts every application (coordinator first device by convention).
    pub fn start(&mut self) {
        for i in 0..self.apps.len() {
            self.with_app(DeviceId(i as u32), |app, ctx| app.on_start(ctx));
        }
    }

    /// Runs events until the queue drains or `deadline` passes.
    pub fn run_until(&mut self, deadline: SimTime) {
        while let Some((at, event)) = self.queue.pop() {
            if at > deadline {
                // put it back conceptually: we re-schedule and stop
                self.queue.schedule(at, event);
                self.now = deadline;
                return;
            }
            self.now = at;
            self.dispatch(event);
        }
        self.now = deadline;
    }

    /// Runs until the event queue is empty (caller guarantees the apps
    /// quiesce).
    pub fn run_to_idle(&mut self) {
        while let Some((at, event)) = self.queue.pop() {
            self.now = at;
            self.dispatch(event);
        }
    }

    fn dispatch(&mut self, event: Event) {
        match event {
            Event::Timer { device, key } => {
                self.with_app(device, |app, ctx| app.on_timer(ctx, key));
            }
            Event::Deliver { frame, attempt } => self.deliver(frame, attempt),
        }
    }

    fn deliver(&mut self, frame: Frame, attempt: u8) {
        use rand::Rng;
        let src = frame.src;
        let dst = frame.dst;
        let in_range = self
            .radio
            .in_range(self.devices[src.index()].position, self.devices[dst.index()].position);
        let lost = !in_range || self.rng.gen_bool(self.radio.loss);
        if lost {
            if in_range && self.mac.may_retry(attempt) {
                let backoff = self.mac.backoff(attempt + 1, &mut self.rng);
                let airtime = self.radio.airtime(&frame);
                let stats = &mut self.devices[src.index()].stats;
                stats.tx_time += airtime;
                stats.energy_uj += energy::tx_energy(airtime);
                stats.frames_sent += 1;
                self.queue.schedule(
                    self.now + backoff + airtime,
                    Event::Deliver { frame, attempt: attempt + 1 },
                );
            } else {
                self.devices[src.index()].stats.frames_lost += 1;
            }
            return;
        }
        let airtime = self.radio.airtime(&frame);
        let stats = &mut self.devices[dst.index()].stats;
        stats.rx_time += airtime;
        stats.energy_uj += energy::rx_energy(airtime);
        stats.frames_received += 1;
        self.with_app(dst, |app, ctx| app.on_frame(ctx, &frame));
    }

    /// Runs `f` with the app taken out of its slot (so the app can borrow
    /// the rest of the network mutably through `Ctx`).
    fn with_app(&mut self, id: DeviceId, f: impl FnOnce(&mut Box<dyn Application>, &mut Ctx<'_>)) {
        let mut app = self.apps[id.index()].take().expect("app present outside callbacks");
        let light = self.light_at(self.now);
        let mut ctx = Ctx {
            now: self.now,
            self_id: id,
            light,
            queue: &mut self.queue,
            devices: &mut self.devices,
            rng: &mut self.rng,
            radio: &self.radio,
            mac: &self.mac,
            next_seq: &mut self.next_seq,
        };
        f(&mut app, &mut ctx);
        self.apps[id.index()] = Some(app);
    }

    /// Current virtual time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Device table access.
    pub fn device(&self, id: DeviceId) -> &Device {
        &self.devices[id.index()]
    }

    /// All devices.
    pub fn devices(&self) -> &[Device] {
        &self.devices
    }

    /// Downcasts a device's application to a concrete type.
    pub fn app_as<T: 'static>(&self, id: DeviceId) -> Option<&T> {
        self.apps[id.index()].as_ref().and_then(|a| a.as_any().downcast_ref::<T>())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use siot_core::task::TaskId;

    /// Echoes every TaskRequest back as an Offer; counts frames.
    struct Echo {
        seen: usize,
    }

    impl Application for Echo {
        fn on_frame(&mut self, ctx: &mut Ctx<'_>, frame: &Frame) {
            self.seen += 1;
            if let Payload::TaskRequest { task } = frame.payload {
                ctx.send(frame.src, Payload::Offer { task, advertised_gain: 1.0 });
            }
        }
        fn as_any(&self) -> &dyn Any {
            self
        }
    }

    /// Sends a request at start; records the offer arrival time.
    struct Requester {
        peer: DeviceId,
        got_offer_at: Option<SimTime>,
    }

    impl Application for Requester {
        fn on_start(&mut self, ctx: &mut Ctx<'_>) {
            ctx.send(self.peer, Payload::TaskRequest { task: TaskId(0) });
        }
        fn on_frame(&mut self, ctx: &mut Ctx<'_>, frame: &Frame) {
            if matches!(frame.payload, Payload::Offer { .. }) {
                self.got_offer_at = Some(ctx.now);
            }
        }
        fn as_any(&self) -> &dyn Any {
            self
        }
    }

    fn lossless() -> RadioModel {
        RadioModel { loss: 0.0, ..RadioModel::default() }
    }

    #[test]
    fn request_response_roundtrip() {
        let mut net = IotNetwork::new(1);
        net.set_radio(lossless());
        let echo = net.add_device(DeviceKind::Trustee, (10.0, 0.0), Box::new(Echo { seen: 0 }));
        let req = net.add_device(
            DeviceKind::Trustor,
            (0.0, 0.0),
            Box::new(Requester { peer: echo, got_offer_at: None }),
        );
        net.start();
        net.run_to_idle();
        let requester: &Requester = net.app_as(req).unwrap();
        assert!(requester.got_offer_at.is_some(), "offer must arrive");
        let echo_app: &Echo = net.app_as(echo).unwrap();
        assert_eq!(echo_app.seen, 1);
        // both devices burned radio time
        assert!(net.device(req).stats.tx_time > SimTime::ZERO);
        assert!(net.device(req).stats.rx_time > SimTime::ZERO);
        assert!(net.device(echo).stats.energy_uj > 0.0);
    }

    #[test]
    fn out_of_range_frames_are_lost() {
        let mut net = IotNetwork::new(2);
        net.set_radio(lossless());
        let echo = net.add_device(DeviceKind::Trustee, (1000.0, 0.0), Box::new(Echo { seen: 0 }));
        let req = net.add_device(
            DeviceKind::Trustor,
            (0.0, 0.0),
            Box::new(Requester { peer: echo, got_offer_at: None }),
        );
        net.start();
        net.run_to_idle();
        let requester: &Requester = net.app_as(req).unwrap();
        assert!(requester.got_offer_at.is_none());
        assert_eq!(net.device(req).stats.frames_lost, 1);
        let echo_app: &Echo = net.app_as(echo).unwrap();
        assert_eq!(echo_app.seen, 0);
    }

    #[test]
    fn lossy_radio_retries_and_usually_delivers() {
        let mut net = IotNetwork::new(3);
        net.set_radio(RadioModel { loss: 0.3, ..RadioModel::default() });
        let echo = net.add_device(DeviceKind::Trustee, (10.0, 0.0), Box::new(Echo { seen: 0 }));
        let _req = net.add_device(
            DeviceKind::Trustor,
            (0.0, 0.0),
            Box::new(Requester { peer: echo, got_offer_at: None }),
        );
        net.start();
        net.run_to_idle();
        // with 4 attempts at 30% loss, P(all lost) ≈ 0.8%; the fixed seed
        // delivers.
        let echo_app: &Echo = net.app_as(echo).unwrap();
        assert_eq!(echo_app.seen, 1);
    }

    #[test]
    fn run_until_respects_deadline() {
        struct Ticker {
            fired: usize,
        }
        impl Application for Ticker {
            fn on_start(&mut self, ctx: &mut Ctx<'_>) {
                ctx.set_timer(SimTime::millis(10), 0);
            }
            fn on_timer(&mut self, ctx: &mut Ctx<'_>, key: u64) {
                self.fired += 1;
                ctx.set_timer(SimTime::millis(10), key + 1);
            }
            fn as_any(&self) -> &dyn Any {
                self
            }
        }
        let mut net = IotNetwork::new(4);
        let t = net.add_device(DeviceKind::Trustor, (0.0, 0.0), Box::new(Ticker { fired: 0 }));
        net.start();
        net.run_until(SimTime::millis(55));
        let ticker: &Ticker = net.app_as(t).unwrap();
        assert_eq!(ticker.fired, 5, "timers at 10..50 ms fire before the 55 ms deadline");
        assert_eq!(net.now(), SimTime::millis(55));
    }

    #[test]
    fn light_schedule_lookup() {
        let mut net = IotNetwork::new(5);
        net.set_light_schedule(vec![
            (SimTime::ZERO, 1.0),
            (SimTime::secs(10), 0.2),
            (SimTime::secs(20), 0.9),
        ]);
        assert_eq!(net.light_at(SimTime::secs(5)), 1.0);
        assert_eq!(net.light_at(SimTime::secs(10)), 0.2);
        assert_eq!(net.light_at(SimTime::secs(15)), 0.2);
        assert_eq!(net.light_at(SimTime::secs(25)), 0.9);
    }

    #[test]
    fn default_light_is_full() {
        let net = IotNetwork::new(6);
        assert_eq!(net.light_at(SimTime::secs(1)), 1.0);
    }
}
