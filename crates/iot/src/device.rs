//! Devices of the experimental network.

use crate::time::SimTime;
use std::fmt;

/// Device identifier (dense index into the network).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct DeviceId(pub u32);

impl DeviceId {
    /// The id as a `usize` index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// Device ids serialize into durable trust logs over their dense index, so
/// a coordinator's fleet ledger can live in a
/// [`LogBackend`](siot_core::log_backend::LogBackend) /
/// [`WriteBehind`](siot_core::log_backend::WriteBehind) store.
impl siot_core::log_backend::LogKey for DeviceId {
    fn to_log_u64(self) -> u64 {
        self.0 as u64
    }

    fn from_log_u64(raw: u64) -> Self {
        DeviceId(raw as u32)
    }
}

impl fmt::Display for DeviceId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "dev{}", self.0)
    }
}

/// Role of a device in the experimental network.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DeviceKind {
    /// The coordinator that starts the IEEE 802.15.4 network and collects
    /// reports (the paper's first device on the network).
    Coordinator,
    /// A trustor node device.
    Trustor,
    /// A trustee node device (honest or dishonest is the app's business).
    Trustee,
}

/// Per-device radio/energy accounting.
#[derive(Debug, Clone, Default)]
pub struct DeviceStats {
    /// Time the radio spent transmitting.
    pub tx_time: SimTime,
    /// Time the radio spent receiving.
    pub rx_time: SimTime,
    /// Frames sent (including retries).
    pub frames_sent: u64,
    /// Frames received.
    pub frames_received: u64,
    /// Frames lost after exhausting retries.
    pub frames_lost: u64,
    /// Energy used, in microjoules.
    pub energy_uj: f64,
}

impl DeviceStats {
    /// Total radio-active time (tx + rx).
    pub fn active_time(&self) -> SimTime {
        self.tx_time + self.rx_time
    }
}

/// A device: identity, kind, position (meters) and counters.
#[derive(Debug, Clone)]
pub struct Device {
    /// The device id.
    pub id: DeviceId,
    /// Its role.
    pub kind: DeviceKind,
    /// Position in meters (the CC2530 radio reaches ~250 m).
    pub position: (f64, f64),
    /// Radio/energy counters.
    pub stats: DeviceStats,
}

impl Device {
    /// Creates a device at a position.
    pub fn new(id: DeviceId, kind: DeviceKind, position: (f64, f64)) -> Self {
        Device { id, kind, position, stats: DeviceStats::default() }
    }

    /// Euclidean distance to another device, in meters.
    pub fn distance_to(&self, other: &Device) -> f64 {
        let dx = self.position.0 - other.position.0;
        let dy = self.position.1 - other.position.1;
        (dx * dx + dy * dy).sqrt()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn distance() {
        let a = Device::new(DeviceId(0), DeviceKind::Coordinator, (0.0, 0.0));
        let b = Device::new(DeviceId(1), DeviceKind::Trustor, (3.0, 4.0));
        assert!((a.distance_to(&b) - 5.0).abs() < 1e-12);
    }

    #[test]
    fn stats_active_time() {
        let s = DeviceStats {
            tx_time: SimTime::millis(2),
            rx_time: SimTime::millis(3),
            ..DeviceStats::default()
        };
        assert_eq!(s.active_time(), SimTime::millis(5));
    }

    #[test]
    fn display_and_index() {
        assert_eq!(DeviceId(4).to_string(), "dev4");
        assert_eq!(DeviceId(4).index(), 4);
    }
}
