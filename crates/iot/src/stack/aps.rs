//! APS-layer fragmentation and reassembly.
//!
//! Results larger than one frame are split into `ResultFragment`s; the
//! receiver reassembles and surfaces the result only when every index has
//! arrived. Fig. 14's dishonest trustees exploit exactly this: they split
//! their results into many fragments to inflate the trustor's radio time.

use siot_core::task::TaskId;
use std::collections::BTreeMap;

/// Reassembly buffer for fragmented results, keyed by (peer, task).
#[derive(Debug, Clone, Default)]
pub struct Reassembly {
    buffers: BTreeMap<(u32, TaskId), FragBuffer>,
}

#[derive(Debug, Clone)]
struct FragBuffer {
    total: u16,
    seen: Vec<bool>,
    quality: f64,
}

impl Reassembly {
    /// An empty reassembler.
    pub fn new() -> Self {
        Self::default()
    }

    /// Accepts one fragment; returns `Some(quality)` when the result is
    /// complete (and forgets the buffer).
    pub fn accept(
        &mut self,
        peer: u32,
        task: TaskId,
        index: u16,
        total: u16,
        quality: f64,
    ) -> Option<f64> {
        if total == 0 || index >= total {
            return None;
        }
        let buf = self.buffers.entry((peer, task)).or_insert_with(|| FragBuffer {
            total,
            seen: vec![false; total as usize],
            quality: 0.0,
        });
        if buf.total != total {
            // inconsistent sender: restart the buffer
            *buf = FragBuffer { total, seen: vec![false; total as usize], quality: 0.0 };
        }
        buf.seen[index as usize] = true;
        if index == total - 1 {
            buf.quality = quality;
        }
        if buf.seen.iter().all(|&s| s) {
            let q = buf.quality;
            self.buffers.remove(&(peer, task));
            Some(q)
        } else {
            None
        }
    }

    /// Drops any partial state for a peer/task (e.g. on timeout).
    pub fn reset(&mut self, peer: u32, task: TaskId) {
        self.buffers.remove(&(peer, task));
    }

    /// Number of in-progress reassemblies.
    pub fn pending(&self) -> usize {
        self.buffers.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_fragment_completes_immediately() {
        let mut r = Reassembly::new();
        assert_eq!(r.accept(1, TaskId(0), 0, 1, 0.9), Some(0.9));
        assert_eq!(r.pending(), 0);
    }

    #[test]
    fn multi_fragment_requires_all() {
        let mut r = Reassembly::new();
        assert_eq!(r.accept(1, TaskId(0), 0, 3, 0.0), None);
        assert_eq!(r.accept(1, TaskId(0), 2, 3, 0.7), None);
        assert_eq!(r.pending(), 1);
        assert_eq!(r.accept(1, TaskId(0), 1, 3, 0.0), Some(0.7));
        assert_eq!(r.pending(), 0);
    }

    #[test]
    fn duplicate_fragments_are_idempotent() {
        let mut r = Reassembly::new();
        assert_eq!(r.accept(1, TaskId(0), 0, 2, 0.0), None);
        assert_eq!(r.accept(1, TaskId(0), 0, 2, 0.0), None);
        assert_eq!(r.accept(1, TaskId(0), 1, 2, 0.5), Some(0.5));
    }

    #[test]
    fn invalid_fragments_rejected() {
        let mut r = Reassembly::new();
        assert_eq!(r.accept(1, TaskId(0), 5, 3, 0.5), None, "index out of range");
        assert_eq!(r.accept(1, TaskId(0), 0, 0, 0.5), None, "zero total");
        assert_eq!(r.pending(), 0);
    }

    #[test]
    fn separate_peers_do_not_mix() {
        let mut r = Reassembly::new();
        assert_eq!(r.accept(1, TaskId(0), 0, 2, 0.0), None);
        assert_eq!(r.accept(2, TaskId(0), 1, 2, 0.9), None);
        assert_eq!(r.pending(), 2);
        r.reset(1, TaskId(0));
        assert_eq!(r.pending(), 1);
    }

    #[test]
    fn total_change_restarts() {
        let mut r = Reassembly::new();
        assert_eq!(r.accept(1, TaskId(0), 0, 3, 0.0), None);
        // sender switches to 2 fragments: buffer restarts
        assert_eq!(r.accept(1, TaskId(0), 0, 2, 0.0), None);
        assert_eq!(r.accept(1, TaskId(0), 1, 2, 0.4), Some(0.4));
    }
}
