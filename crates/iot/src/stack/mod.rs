//! Protocol-stack helpers (MAC retry/backoff policy, APS fragmentation).

pub mod aps;
pub mod mac;
