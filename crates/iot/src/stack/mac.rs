//! MAC-layer policy: CSMA-flavoured backoff and unicast retries.

use crate::time::SimTime;
use rand::rngs::SmallRng;
use rand::Rng;

/// MAC parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MacPolicy {
    /// Maximum transmission attempts per unicast (1 initial + retries).
    pub max_attempts: u8,
    /// Backoff unit in µs (802.15.4: 320 µs).
    pub backoff_unit_us: u64,
}

impl Default for MacPolicy {
    fn default() -> Self {
        MacPolicy { max_attempts: 4, backoff_unit_us: 320 }
    }
}

impl MacPolicy {
    /// Random backoff before attempt `attempt` (binary exponential:
    /// `U[0, 2^min(attempt+1, 5)) × unit`).
    pub fn backoff(&self, attempt: u8, rng: &mut SmallRng) -> SimTime {
        let exp = (attempt + 1).min(5);
        let slots = 1u64 << exp;
        SimTime::micros(rng.gen_range(0..slots) * self.backoff_unit_us)
    }

    /// Whether another attempt is allowed after `attempt` failed.
    pub fn may_retry(&self, attempt: u8) -> bool {
        attempt + 1 < self.max_attempts
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn backoff_bounded_and_growing() {
        let mac = MacPolicy::default();
        let mut rng = SmallRng::seed_from_u64(1);
        for attempt in 0..4u8 {
            let exp = (attempt + 1).min(5);
            let max = (1u64 << exp) * mac.backoff_unit_us;
            for _ in 0..50 {
                let b = mac.backoff(attempt, &mut rng).as_micros();
                assert!(b < max, "attempt {attempt}: {b} < {max}");
            }
        }
    }

    #[test]
    fn retry_budget() {
        let mac = MacPolicy::default();
        assert!(mac.may_retry(0));
        assert!(mac.may_retry(2));
        assert!(!mac.may_retry(3));
    }
}
