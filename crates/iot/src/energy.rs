//! Energy model for the CC2530-class radio.
//!
//! Datasheet-flavoured constants: the CC2530 draws ~29 mA transmitting at
//! 1 dBm and ~24 mA receiving, at 3 V. We charge energy per microsecond of
//! radio activity.

use crate::time::SimTime;

/// Microjoules per microsecond while transmitting (~87 mW).
pub const TX_UJ_PER_US: f64 = 0.087;
/// Microjoules per microsecond while receiving (~72 mW).
pub const RX_UJ_PER_US: f64 = 0.072;

/// Energy for a transmit burst.
pub fn tx_energy(duration: SimTime) -> f64 {
    duration.as_micros() as f64 * TX_UJ_PER_US
}

/// Energy for a receive burst.
pub fn rx_energy(duration: SimTime) -> f64 {
    duration.as_micros() as f64 * RX_UJ_PER_US
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tx_costs_more_than_rx() {
        let d = SimTime::millis(1);
        assert!(tx_energy(d) > rx_energy(d));
        assert!((tx_energy(d) - 87.0).abs() < 1e-9);
    }

    #[test]
    fn zero_duration_zero_energy() {
        assert_eq!(tx_energy(SimTime::ZERO), 0.0);
        assert_eq!(rx_energy(SimTime::ZERO), 0.0);
    }
}
