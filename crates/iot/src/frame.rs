//! Frames exchanged over the simulated radio.

use crate::device::DeviceId;
use siot_core::task::TaskId;

/// Application payload of a frame. Sizes drive airtime, so every variant
/// reports its wire size.
#[derive(Debug, Clone, PartialEq)]
pub enum Payload {
    /// Coordinator beacon announcing the network.
    Beacon,
    /// A device asks to join the network.
    AssocRequest,
    /// The coordinator confirms a join.
    AssocResponse,
    /// A trustor asks potential trustees for a task offer.
    TaskRequest {
        /// The requested task type.
        task: TaskId,
    },
    /// A trustee offers to execute a task.
    Offer {
        /// The task being offered.
        task: TaskId,
        /// Advertised quality (self-reported, may be inflated).
        advertised_gain: f64,
    },
    /// A trustor delegates the task to the chosen trustee.
    Delegate {
        /// The delegated task type.
        task: TaskId,
    },
    /// Part of the trustee's result (fragments reassemble at APS).
    ResultFragment {
        /// The task this result answers.
        task: TaskId,
        /// Index of this fragment.
        index: u16,
        /// Total fragments in the result.
        total: u16,
        /// Result quality in `[0, 1]` (carried on the last fragment).
        quality: f64,
    },
    /// End-of-run report to the coordinator.
    Report {
        /// The trustee this trustor ended up selecting.
        selected: DeviceId,
        /// Realized net profit (scaled).
        net_profit: f64,
    },
    /// Raw application bytes (generic filler).
    Raw(u16),
}

impl Payload {
    /// Payload size on the wire, in bytes (MAC/NWK headers added by the
    /// radio model).
    pub fn size_bytes(&self) -> u16 {
        match self {
            Payload::Beacon => 8,
            Payload::AssocRequest => 12,
            Payload::AssocResponse => 14,
            Payload::TaskRequest { .. } => 16,
            Payload::Offer { .. } => 20,
            Payload::Delegate { .. } => 16,
            Payload::ResultFragment { .. } => 64,
            Payload::Report { .. } => 24,
            Payload::Raw(n) => *n,
        }
    }
}

/// A unicast frame in flight.
#[derive(Debug, Clone, PartialEq)]
pub struct Frame {
    /// Sender.
    pub src: DeviceId,
    /// Receiver.
    pub dst: DeviceId,
    /// Application payload.
    pub payload: Payload,
    /// Sequence number (unique per network).
    pub seq: u64,
}

impl Frame {
    /// Total wire size: payload + 17-byte MAC/NWK/APS overhead (ZigBee-ish).
    pub fn wire_bytes(&self) -> u32 {
        self.payload.size_bytes() as u32 + 17
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn payload_sizes_positive() {
        let payloads = [
            Payload::Beacon,
            Payload::AssocRequest,
            Payload::AssocResponse,
            Payload::TaskRequest { task: TaskId(0) },
            Payload::Offer { task: TaskId(0), advertised_gain: 0.9 },
            Payload::Delegate { task: TaskId(0) },
            Payload::ResultFragment { task: TaskId(0), index: 0, total: 1, quality: 1.0 },
            Payload::Report { selected: DeviceId(1), net_profit: 0.5 },
            Payload::Raw(100),
        ];
        for p in payloads {
            assert!(p.size_bytes() > 0, "{p:?}");
        }
    }

    #[test]
    fn wire_bytes_add_overhead() {
        let f = Frame { src: DeviceId(0), dst: DeviceId(1), payload: Payload::Raw(10), seq: 1 };
        assert_eq!(f.wire_bytes(), 27);
    }
}
