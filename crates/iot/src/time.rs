//! Virtual time with microsecond resolution.

use std::fmt;
use std::ops::{Add, AddAssign, Sub};

/// A point (or span) of virtual time, in microseconds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(pub u64);

impl SimTime {
    /// Time zero.
    pub const ZERO: SimTime = SimTime(0);

    /// From microseconds.
    pub const fn micros(us: u64) -> Self {
        SimTime(us)
    }

    /// From milliseconds.
    pub const fn millis(ms: u64) -> Self {
        SimTime(ms * 1_000)
    }

    /// From seconds.
    pub const fn secs(s: u64) -> Self {
        SimTime(s * 1_000_000)
    }

    /// Whole microseconds.
    pub const fn as_micros(self) -> u64 {
        self.0
    }

    /// Milliseconds as a float (reporting convenience).
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1_000.0
    }
}

impl Add for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimTime) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl AddAssign for SimTime {
    fn add_assign(&mut self, rhs: SimTime) {
        self.0 += rhs.0;
    }
}

impl Sub for SimTime {
    type Output = SimTime;
    fn sub(self, rhs: SimTime) -> SimTime {
        SimTime(self.0.saturating_sub(rhs.0))
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}ms", self.as_millis_f64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions() {
        assert_eq!(SimTime::millis(3).as_micros(), 3_000);
        assert_eq!(SimTime::secs(2).as_micros(), 2_000_000);
        assert_eq!(SimTime::micros(1500).as_millis_f64(), 1.5);
    }

    #[test]
    fn arithmetic() {
        let t = SimTime::millis(1) + SimTime::micros(500);
        assert_eq!(t.as_micros(), 1_500);
        assert_eq!((t - SimTime::micros(500)).as_micros(), 1_000);
        // saturating subtraction
        assert_eq!((SimTime::ZERO - SimTime::millis(1)).as_micros(), 0);
        let mut acc = SimTime::ZERO;
        acc += SimTime::millis(2);
        assert_eq!(acc, SimTime::millis(2));
    }

    #[test]
    fn ordering_and_display() {
        assert!(SimTime::millis(1) < SimTime::millis(2));
        assert_eq!(SimTime::micros(1500).to_string(), "1.500ms");
    }
}
