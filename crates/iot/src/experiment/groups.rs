//! The paper's experimental topology (§5.2): five node groups, each with
//! two trustors, two honest trustees and two dishonest trustees, plus the
//! coordinator that starts the network.

use crate::app::{CoordinatorApp, TrusteeApp, TrusteeBehavior, TrustorApp, TrustorConfig};
use crate::device::{DeviceId, DeviceKind};
use crate::network::IotNetwork;
use crate::radio::RadioModel;
use siot_core::task::Task;

/// Shape of the experimental network.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GroupSetup {
    /// Number of groups (paper: 5).
    pub groups: usize,
    /// Trustors per group (paper: 2).
    pub trustors_per_group: usize,
    /// Honest trustees per group (paper: 2).
    pub honest_per_group: usize,
    /// Dishonest trustees per group (paper: 2).
    pub dishonest_per_group: usize,
}

impl Default for GroupSetup {
    fn default() -> Self {
        GroupSetup { groups: 5, trustors_per_group: 2, honest_per_group: 2, dishonest_per_group: 2 }
    }
}

/// The assembled network plus the device roles.
pub struct BuiltNetwork {
    /// The simulator, started and ready to run.
    pub net: IotNetwork,
    /// The coordinator device.
    pub coordinator: DeviceId,
    /// All trustor devices.
    pub trustors: Vec<DeviceId>,
    /// All honest trustee devices.
    pub honest: Vec<DeviceId>,
    /// All dishonest trustee devices.
    pub dishonest: Vec<DeviceId>,
}

/// Builds the five-group network.
///
/// `trustor_cfg` receives the trustee ids of the trustor's own group and
/// produces that trustor's configuration; behaviours are cloned per
/// trustee. All task definitions the trustees might execute are passed in
/// `task_defs`.
pub fn build(
    seed: u64,
    setup: GroupSetup,
    honest_behavior: &TrusteeBehavior,
    dishonest_behavior: &TrusteeBehavior,
    task_defs: &[Task],
    mut trustor_cfg: impl FnMut(Vec<DeviceId>) -> TrustorConfig,
) -> BuiltNetwork {
    let mut net = IotNetwork::new(seed);
    // testbed radios are close together and reliable; losses are retried
    net.set_radio(RadioModel { loss: 0.02, ..RadioModel::default() });

    let coordinator =
        net.add_device(DeviceKind::Coordinator, (0.0, 0.0), Box::new(CoordinatorApp::new()));

    let mut trustors = Vec::new();
    let mut honest = Vec::new();
    let mut dishonest = Vec::new();

    let per_group = setup.trustors_per_group + setup.honest_per_group + setup.dishonest_per_group;
    for gi in 0..setup.groups {
        let angle = gi as f64 / setup.groups as f64 * std::f64::consts::TAU;
        let center = (80.0 * angle.cos(), 80.0 * angle.sin());

        // ids are assigned in add order: trustors, honest, dishonest
        let base = 1 + gi as u32 * per_group as u32;
        let trustee_ids: Vec<DeviceId> = (0..(setup.honest_per_group + setup.dishonest_per_group))
            .map(|k| DeviceId(base + setup.trustors_per_group as u32 + k as u32))
            .collect();

        for k in 0..setup.trustors_per_group {
            let pos = (center.0 + 3.0 * k as f64, center.1 - 5.0);
            let cfg = trustor_cfg(trustee_ids.clone());
            let id = net.add_device(DeviceKind::Trustor, pos, Box::new(TrustorApp::new(cfg)));
            trustors.push(id);
        }
        for k in 0..setup.honest_per_group {
            let pos = (center.0 + 3.0 * k as f64, center.1 + 5.0);
            let app = TrusteeApp::new(honest_behavior.clone(), task_defs.iter().cloned());
            let id = net.add_device(DeviceKind::Trustee, pos, Box::new(app));
            honest.push(id);
        }
        for k in 0..setup.dishonest_per_group {
            let pos = (center.0 + 3.0 * k as f64, center.1 + 10.0);
            let app = TrusteeApp::new(dishonest_behavior.clone(), task_defs.iter().cloned());
            let id = net.add_device(DeviceKind::Trustee, pos, Box::new(app));
            dishonest.push(id);
        }
    }

    BuiltNetwork { net, coordinator, trustors, honest, dishonest }
}

#[cfg(test)]
mod tests {
    use super::*;
    use siot_core::task::{CharacteristicId, TaskId};

    fn a_task() -> Task {
        Task::uniform(TaskId(0), [CharacteristicId(0)]).unwrap()
    }

    #[test]
    fn builds_paper_topology() {
        let setup = GroupSetup::default();
        let built = build(
            1,
            setup,
            &TrusteeBehavior::honest(0.8),
            &TrusteeBehavior::honest(0.5),
            &[a_task()],
            |trustees| {
                assert_eq!(trustees.len(), 4, "2 honest + 2 dishonest per group");
                TrustorConfig::new(trustees, DeviceId(0))
            },
        );
        assert_eq!(built.trustors.len(), 10);
        assert_eq!(built.honest.len(), 10);
        assert_eq!(built.dishonest.len(), 10);
        assert_eq!(built.coordinator, DeviceId(0));
        assert_eq!(built.net.devices().len(), 31);
    }

    #[test]
    fn trustee_ids_point_at_trustees() {
        let built = build(
            2,
            GroupSetup::default(),
            &TrusteeBehavior::honest(0.8),
            &TrusteeBehavior::honest(0.5),
            &[a_task()],
            |trustees| TrustorConfig::new(trustees, DeviceId(0)),
        );
        for &t in built.honest.iter().chain(&built.dishonest) {
            assert_eq!(built.net.device(t).kind, DeviceKind::Trustee);
        }
        for &t in &built.trustors {
            assert_eq!(built.net.device(t).kind, DeviceKind::Trustor);
        }
    }

    #[test]
    fn groups_are_radio_reachable() {
        let built = build(
            3,
            GroupSetup::default(),
            &TrusteeBehavior::honest(0.8),
            &TrusteeBehavior::honest(0.5),
            &[a_task()],
            |trustees| TrustorConfig::new(trustees, DeviceId(0)),
        );
        let radio = RadioModel::default();
        let coord = built.net.device(built.coordinator);
        for d in built.net.devices() {
            assert!(
                radio.in_range(coord.position, d.position),
                "{} out of coordinator range",
                d.id
            );
        }
    }
}
