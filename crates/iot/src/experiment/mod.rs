//! Testbed experiments, one per hardware figure of the paper.

pub mod fragments;
pub mod groups;
pub mod inference;
pub mod light;

pub use groups::{build, BuiltNetwork, GroupSetup};
