//! Fig. 16 — dynamic environment on the testbed: optical sensors under a
//! light → dark → light schedule (§5.7).
//!
//! Normal trustees serve the whole time but their sensing quality follows
//! the light. Malicious trustees appear only in the last light period and
//! misbehave now and then. With the environment-removal model (Eqs. 25–29)
//! the trustors keep crediting the normal trustees for the dark period, so
//! once light returns the normal trustees are re-selected and the network
//! profit recovers; without it, the normal trustees' trust is ruined and
//! the malicious ones take over.

use crate::app::{Scoring, TrusteeBehavior, TrustorApp, TrustorConfig};
use crate::device::DeviceId;
use crate::experiment::groups::{build, GroupSetup};
use crate::time::SimTime;
use siot_core::task::{CharacteristicId, Task, TaskId};

/// Experiment parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LightConfig {
    /// Experiment runs (paper: 50).
    pub rounds: usize,
    /// Last round (exclusive) of the first light period.
    pub dark_from: usize,
    /// First round of the final light period.
    pub light_again_from: usize,
    /// Light level during the dark period.
    pub dark_level: f64,
    /// Probability the opportunists misbehave on a served task.
    pub misbehave_prob: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for LightConfig {
    fn default() -> Self {
        LightConfig {
            rounds: 50,
            dark_from: 17,
            light_again_from: 34,
            dark_level: 0.15,
            misbehave_prob: 0.4,
            seed: 42,
        }
    }
}

/// Network net profit (summed over trustors, ×100) per experiment index.
#[derive(Debug, Clone, PartialEq)]
pub struct LightOutcome {
    /// With the environment-removal model.
    pub with_model: Vec<f64>,
    /// Plain updates (environment bakes into trust).
    pub without_model: Vec<f64>,
    /// The light level active during each round.
    pub light: Vec<f64>,
}

const ROUND_INTERVAL: SimTime = SimTime::secs(5);

/// Runs both arms.
pub fn run(cfg: &LightConfig) -> LightOutcome {
    let light: Vec<f64> = (0..cfg.rounds)
        .map(|r| if r >= cfg.dark_from && r < cfg.light_again_from { cfg.dark_level } else { 1.0 })
        .collect();
    LightOutcome { with_model: run_arm(cfg, true), without_model: run_arm(cfg, false), light }
}

fn run_arm(cfg: &LightConfig, env_aware: bool) -> Vec<f64> {
    let task = Task::uniform(TaskId(0), [CharacteristicId(0)]).expect("non-empty");
    let tasks: Vec<Task> = vec![task.clone(); cfg.rounds];

    // the light schedule in wall time; rounds fire at r·interval + stagger
    let dark_start = SimTime::micros(cfg.dark_from as u64 * ROUND_INTERVAL.as_micros());
    let light_return = SimTime::micros(cfg.light_again_from as u64 * ROUND_INTERVAL.as_micros());

    let built = build(
        cfg.seed,
        GroupSetup::default(),
        &TrusteeBehavior::light_dependent(0.85),
        // opportunists look fine when they serve but misbehave often and
        // deliver slightly worse results than the normal sensors
        &TrusteeBehavior::light_opportunist(0.8, light_return, cfg.misbehave_prob),
        &[task],
        |trustees| {
            let mut c = TrustorConfig::new(trustees, DeviceId(0));
            c.tasks = tasks.clone();
            c.use_inference = false;
            c.scoring = Scoring::TrustTw;
            c.env_aware = env_aware;
            c.round_interval = ROUND_INTERVAL;
            c.result_timeout = SimTime::secs(2);
            c
        },
    );

    let mut net = built.net;
    net.set_light_schedule(vec![
        (SimTime::ZERO, 1.0),
        (dark_start, cfg.dark_level),
        (light_return, 1.0),
    ]);
    net.start();
    net.run_to_idle();

    let mut profit = vec![0.0f64; cfg.rounds];
    for &t in &built.trustors {
        let app: &TrustorApp = net.app_as(t).expect("trustor app");
        for log in &app.logs {
            if log.round < cfg.rounds {
                profit[log.round] += log.profit * 100.0;
            }
        }
    }
    profit
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mean(xs: &[f64]) -> f64 {
        xs.iter().sum::<f64>() / xs.len() as f64
    }

    fn outcome() -> LightOutcome {
        run(&LightConfig { rounds: 30, dark_from: 10, light_again_from: 20, ..Default::default() })
    }

    #[test]
    fn first_light_period_profitable_in_both_arms() {
        let out = outcome();
        assert!(mean(&out.with_model[2..10]) > 400.0, "{:?}", &out.with_model[..10]);
        assert!(mean(&out.without_model[2..10]) > 400.0);
    }

    #[test]
    fn dark_period_hurts_everyone() {
        let out = outcome();
        assert!(mean(&out.with_model[12..20]) < 300.0);
        assert!(mean(&out.without_model[12..20]) < 300.0);
    }

    #[test]
    fn proposed_model_recovers_after_dark() {
        let out = outcome();
        let with_recovery = mean(&out.with_model[24..]);
        let without_recovery = mean(&out.without_model[24..]);
        assert!(with_recovery > 400.0, "proposed model must recover: {with_recovery}");
        assert!(
            with_recovery > without_recovery + 50.0,
            "with {with_recovery} vs without {without_recovery}"
        );
    }

    #[test]
    fn light_series_reflects_schedule() {
        let out = outcome();
        assert_eq!(out.light.len(), 30);
        assert_eq!(out.light[0], 1.0);
        assert_eq!(out.light[15], 0.15);
        assert_eq!(out.light[25], 1.0);
    }

    #[test]
    fn deterministic() {
        let cfg =
            LightConfig { rounds: 8, dark_from: 3, light_again_from: 6, ..Default::default() };
        assert_eq!(run(&cfg), run(&cfg));
    }
}
