//! Fig. 8 — inferential transfer of trust on the testbed (§5.4).
//!
//! Each trustor requests, in every experiment run, a task with two
//! characteristics that appeared in different previous tasks. Dishonest
//! trustees performed maliciously on one of those characteristics before.
//! With the proposed characteristic-based model the trustors infer the
//! distrust and pick honest devices; without it, the task looks brand new
//! and selection is a coin flip.

use crate::app::{RoundLog, Scoring, TrusteeBehavior, TrustorApp, TrustorConfig};
use crate::device::DeviceId;
use crate::experiment::groups::{build, GroupSetup};
use crate::time::SimTime;
use siot_core::record::TrustRecord;
use siot_core::task::{CharacteristicId, Task, TaskId};

/// Experiment parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct InferenceConfig {
    /// Number of experiment runs (paper: 50).
    pub runs: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for InferenceConfig {
    fn default() -> Self {
        InferenceConfig { runs: 50, seed: 42 }
    }
}

/// Percentage of trustors selecting honest devices, per experiment run.
#[derive(Debug, Clone, PartialEq)]
pub struct InferenceOutcome {
    /// With the proposed characteristic-based inference.
    pub with_model: Vec<f64>,
    /// Treating every task as brand new.
    pub without_model: Vec<f64>,
}

const GOOD_CHAR: CharacteristicId = CharacteristicId(0);
const BAD_CHAR: CharacteristicId = CharacteristicId(1);
/// Previous task containing the characteristic the dishonest trustees
/// botched.
const PREV_BAD: TaskId = TaskId(100);
/// Previous task everyone did fine.
const PREV_GOOD: TaskId = TaskId(101);

/// Runs both arms and reports the per-run honest-selection percentages.
pub fn run(cfg: &InferenceConfig) -> InferenceOutcome {
    InferenceOutcome { with_model: run_arm(cfg, true), without_model: run_arm(cfg, false) }
}

fn run_arm(cfg: &InferenceConfig, use_inference: bool) -> Vec<f64> {
    let prev_bad = Task::uniform(PREV_BAD, [BAD_CHAR]).expect("non-empty");
    let prev_good = Task::uniform(PREV_GOOD, [GOOD_CHAR]).expect("non-empty");
    // fresh 2-characteristic task type per run: ids 200, 201, ...
    let round_tasks: Vec<Task> = (0..cfg.runs)
        .map(|r| Task::uniform(TaskId(200 + r as u32), [GOOD_CHAR, BAD_CHAR]).expect("non-empty"))
        .collect();
    let mut all_defs = round_tasks.clone();
    all_defs.push(prev_bad.clone());
    all_defs.push(prev_good.clone());

    let setup = GroupSetup::default();
    let honest_rec = TrustRecord::with_priors(0.85, 0.8, 0.1, 0.1);
    let bad_rec = TrustRecord::with_priors(0.12, 0.1, 0.8, 0.1);

    let built = build(
        cfg.seed,
        setup,
        &TrusteeBehavior::honest(0.8),
        &TrusteeBehavior::dishonest_on(vec![BAD_CHAR], 0.8),
        &all_defs,
        |trustees| {
            let mut c = TrustorConfig::new(trustees.clone(), DeviceId(0));
            c.tasks = round_tasks.clone();
            c.known_tasks = vec![prev_bad.clone(), prev_good.clone()];
            c.use_inference = use_inference;
            c.scoring = Scoring::TrustTw;
            c.round_interval = SimTime::secs(2);
            // seeded experience: the first half of each group's trustees
            // are honest (good records on both previous tasks), the second
            // half performed maliciously on PREV_BAD
            for (i, &t) in trustees.iter().enumerate() {
                let honest = i < setup.honest_per_group;
                c.seed_records.push((t, PREV_GOOD, honest_rec));
                c.seed_records.push((t, PREV_BAD, if honest { honest_rec } else { bad_rec }));
            }
            c
        },
    );

    let mut net = built.net;
    net.start();
    net.run_to_idle();

    // per-run honest-selection percentage over all trustors
    let honest: std::collections::BTreeSet<DeviceId> = built.honest.iter().copied().collect();
    let mut per_run = vec![(0usize, 0usize); cfg.runs];
    for &t in &built.trustors {
        let app: &TrustorApp = net.app_as(t).expect("trustor app");
        for log in &app.logs {
            record_selection(&mut per_run, log, &honest);
        }
    }
    per_run
        .into_iter()
        .map(|(h, total)| if total == 0 { 0.0 } else { 100.0 * h as f64 / total as f64 })
        .collect()
}

fn record_selection(
    per_run: &mut [(usize, usize)],
    log: &RoundLog,
    honest: &std::collections::BTreeSet<DeviceId>,
) {
    if log.round >= per_run.len() {
        return;
    }
    if let Some(sel) = log.selected {
        per_run[log.round].1 += 1;
        if honest.contains(&sel) {
            per_run[log.round].0 += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mean(xs: &[f64]) -> f64 {
        xs.iter().sum::<f64>() / xs.len() as f64
    }

    #[test]
    fn with_model_selects_honest_overwhelmingly() {
        let out = run(&InferenceConfig { runs: 12, seed: 7 });
        assert_eq!(out.with_model.len(), 12);
        let m = mean(&out.with_model);
        assert!(m > 85.0, "with-model honest selection {m}%");
    }

    #[test]
    fn without_model_is_a_coin_flip() {
        let out = run(&InferenceConfig { runs: 12, seed: 7 });
        let m = mean(&out.without_model);
        assert!((25.0..=75.0).contains(&m), "without-model honest selection {m}%");
    }

    #[test]
    fn gap_matches_paper_shape() {
        let out = run(&InferenceConfig { runs: 10, seed: 3 });
        assert!(
            mean(&out.with_model) > mean(&out.without_model) + 20.0,
            "the proposed model must clearly dominate: {:?}",
            out
        );
    }

    #[test]
    fn deterministic() {
        let cfg = InferenceConfig { runs: 5, seed: 1 };
        assert_eq!(run(&cfg), run(&cfg));
    }
}
