//! Fig. 14 — detecting fragment-flooding trustees via the cost factor
//! (§5.6).
//!
//! Dishonest trustees deliver attractive results (higher advertised and
//! realized quality) but split them into a long stream of fragment
//! packages, prolonging the trustor's radio-active time. A gain-only model
//! keeps choosing them; the proposed four-factor model notices the cost
//! and drops them after a few interactions, so the average active time
//! falls to the honest level.

use crate::app::{Scoring, TrusteeBehavior, TrustorApp, TrustorConfig};
use crate::device::DeviceId;
use crate::experiment::groups::{build, GroupSetup};
use crate::time::SimTime;
use siot_core::task::{CharacteristicId, Task, TaskId};

/// Experiment parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FragmentsConfig {
    /// Tasks each trustor requests (paper: 50).
    pub rounds: usize,
    /// Fragments per dishonest result (honest trustees send 2).
    pub attack_fragments: u16,
    /// RNG seed.
    pub seed: u64,
}

impl Default for FragmentsConfig {
    fn default() -> Self {
        FragmentsConfig { rounds: 50, attack_fragments: 24, seed: 42 }
    }
}

/// Average trustor active time (ms) per experiment index.
#[derive(Debug, Clone, PartialEq)]
pub struct FragmentsOutcome {
    /// Proposed model (gain **and** cost, Eq. 23).
    pub with_model: Vec<f64>,
    /// Baseline (gain only).
    pub without_model: Vec<f64>,
}

/// Runs both arms.
pub fn run(cfg: &FragmentsConfig) -> FragmentsOutcome {
    FragmentsOutcome {
        with_model: run_arm(cfg, Scoring::NetProfit),
        without_model: run_arm(cfg, Scoring::GainOnly),
    }
}

fn run_arm(cfg: &FragmentsConfig, scoring: Scoring) -> Vec<f64> {
    // one task type repeated every round: records accumulate
    let task = Task::uniform(TaskId(0), [CharacteristicId(0)]).expect("non-empty");
    let tasks: Vec<Task> = vec![task.clone(); cfg.rounds];

    let built = build(
        cfg.seed,
        GroupSetup::default(),
        &TrusteeBehavior::honest(0.8),
        &TrusteeBehavior::fragment_attacker(0.95, cfg.attack_fragments),
        &[task],
        |trustees| {
            let mut c = TrustorConfig::new(trustees, DeviceId(0));
            c.tasks = tasks.clone();
            c.use_inference = false;
            c.scoring = scoring;
            c.round_interval = SimTime::secs(3);
            c.result_timeout = SimTime::secs(2);
            c
        },
    );

    let mut net = built.net;
    net.start();
    net.run_to_idle();

    // average interaction (active) time per round over all trustors
    let mut sums = vec![(0.0f64, 0usize); cfg.rounds];
    for &t in &built.trustors {
        let app: &TrustorApp = net.app_as(t).expect("trustor app");
        for log in &app.logs {
            if log.round < cfg.rounds && log.selected.is_some() {
                sums[log.round].0 += log.interaction.as_millis_f64();
                sums[log.round].1 += 1;
            }
        }
    }
    sums.into_iter().map(|(s, n)| if n == 0 { 0.0 } else { s / n as f64 }).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mean(xs: &[f64]) -> f64 {
        xs.iter().sum::<f64>() / xs.len() as f64
    }

    #[test]
    fn proposed_model_drives_active_time_down() {
        let out = run(&FragmentsConfig { rounds: 24, ..Default::default() });
        let early = mean(&out.with_model[..4]);
        let late = mean(&out.with_model[16..]);
        assert!(
            late < early * 0.7,
            "active time must fall once attackers are identified: early {early:.0}ms late {late:.0}ms"
        );
    }

    #[test]
    fn gain_only_stays_expensive() {
        let out = run(&FragmentsConfig { rounds: 24, ..Default::default() });
        let with_late = mean(&out.with_model[16..]);
        let without_late = mean(&out.without_model[16..]);
        assert!(
            without_late > with_late * 2.0,
            "gain-only keeps paying the attackers: with {with_late:.0}ms without {without_late:.0}ms"
        );
    }

    #[test]
    fn attack_inflates_interaction_time() {
        let out = run(&FragmentsConfig { rounds: 10, ..Default::default() });
        // early rounds explore, so some trustors hit attackers in both arms
        assert!(mean(&out.without_model) > 200.0, "{:?}", out.without_model);
    }

    #[test]
    fn deterministic() {
        let cfg = FragmentsConfig { rounds: 6, ..Default::default() };
        assert_eq!(run(&cfg), run(&cfg));
    }
}
