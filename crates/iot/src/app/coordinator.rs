//! The coordinator: first device on the network, answers association
//! requests and collects end-of-run reports over the serial-port
//! equivalent (§5.2).
//!
//! Besides the raw report log, the coordinator folds every report into a
//! fleet-wide [`TrustEngine`] over the sharded backend — the coordinator
//! hears from *every* trustor about *every* selected trustee, so its peer
//! count scales with the whole network, which is exactly the workload the
//! sharded storage is for. The resulting ledger ranks trustees by their
//! network-wide reported profitability.
//!
//! Reports are the trustors' executed delegation sessions boiled down to a
//! net profit; the coordinator re-materializes each as an observation and
//! **batches** them through a shard-affine [`ObserverPool`] — each
//! `LEDGER_FLUSH`-sized slate is routed by shard and folded by the lane's
//! owning worker, so flushes stay one storage pass per lane and never
//! contend — with any (sub-slate-sized) tail folded inline through the
//! backend's shared handle the moment the ledger is read.
//! Shard-affine pooled folding is bit-identical to sequential folding, so
//! routing the fleet ledger through worker threads changes nothing about
//! its (deterministic) contents.
//!
//! The ledger's backend is generic: the in-memory [`ShardedBackend`] by
//! default, or — via [`CoordinatorApp::durable`] — the write-behind
//! journaled store, so the fleet-wide trust ledger survives a coordinator
//! restart ([`CoordinatorApp::sync_ledger`] forces it to disk; the journal
//! also flushes on drop).

use crate::device::DeviceId;
use crate::frame::{Frame, Payload};
use crate::network::{Application, Ctx};
use crate::time::SimTime;
use siot_core::backend::{ConcurrentTrustBackend, ShardedBackend};
use siot_core::context::Context;
use siot_core::delegation::{
    CompletedDelegation, DelegationOutcome, DelegationReceipt, DelegationRequest,
};
use siot_core::error::TrustError;
use siot_core::goal::Goal;
use siot_core::log_backend::{LogOptions, WriteBehind};
use siot_core::pool::ObserverPool;
use siot_core::record::{ForgettingFactors, Observation, TrustRecord};
use siot_core::service::{
    block_on, FleetTrustHandle, Freshness, Pending, RemotePending, RemoteTrustServiceHandle,
    ShardedTrustServiceHandle, TrustServiceHandle,
};
use siot_core::store::TrustEngine;
use siot_core::task::{CharacteristicId, Task, TaskId};
use std::any::Any;
use std::cell::RefCell;
use std::path::Path;
use std::sync::Arc;

/// Reports do not carry a task id, so the fleet ledger files everything
/// under one synthetic task.
const LEDGER_TASK: TaskId = TaskId(0);

/// Pending reports are committed in one storage pass per this many. Sized
/// so a slate is worth a pool dispatch: on a multicore host each flush
/// costs one worker handoff + barrier, which a 32-record slate would not
/// amortize (reads still see every report — the tail flushes lazily).
const LEDGER_FLUSH: usize = 1024;

/// Lane-owning workers folding ledger flushes; the ledger's backend is
/// sized to match via [`ShardedBackend::with_shards_for_writers`].
const LEDGER_WRITERS: usize = 2;

/// A reported net profit in `[-1, 1]` as a unit-range ledger observation:
/// pure gain when positive, pure damage when negative. `None` for
/// non-finite reports (a buggy or malicious device) — NaN must never
/// enter a ledger whose ranking comparator assumes finite profits.
fn report_observation(net_profit: f64) -> Option<Observation> {
    if !net_profit.is_finite() {
        return None;
    }
    Some(Observation {
        success_rate: if net_profit > 0.0 { 1.0 } else { 0.0 },
        gain: net_profit.clamp(0.0, 1.0),
        damage: (-net_profit).clamp(0.0, 1.0),
        cost: 0.0,
    })
}

/// One collected report.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CollectedReport {
    /// When the report arrived.
    pub at: SimTime,
    /// The reporting trustor.
    pub reporter: DeviceId,
    /// The trustee that trustor selected.
    pub selected: DeviceId,
    /// The trustor's realized net profit.
    pub net_profit: f64,
}

/// Coordinator application state, generic over the ledger's storage
/// backend: the in-memory [`ShardedBackend`] by default, or the journaled
/// [`WriteBehind`] store via [`CoordinatorApp::durable`].
#[derive(Debug)]
pub struct CoordinatorApp<B: ConcurrentTrustBackend<DeviceId> = ShardedBackend<DeviceId>> {
    /// Devices that completed association.
    pub joined: Vec<DeviceId>,
    /// Reports collected from trustors.
    pub reports: Vec<CollectedReport>,
    /// Fleet-wide trustee ledger: every report folded as an observation.
    /// Shared (`Arc`) with the pool's lane-owning workers.
    ledger: Arc<TrustEngine<DeviceId, B>>,
    /// Shard-affine workers the flushes fold through.
    pool: ObserverPool<DeviceId, B>,
    /// Validated observations awaiting their batched commit. A `RefCell`
    /// so the tail can be flushed from the read accessors (the app is
    /// driven by a single-threaded event loop); the folds themselves go
    /// through the pool.
    pending: RefCell<Vec<(DeviceId, TaskId, Observation)>>,
}

impl Default for CoordinatorApp {
    fn default() -> Self {
        Self::new()
    }
}

impl CoordinatorApp {
    /// A fresh coordinator with the in-memory sharded ledger.
    pub fn new() -> Self {
        Self::with_ledger(TrustEngine::with_backend(ShardedBackend::with_shards_for_writers(
            LEDGER_WRITERS,
        )))
    }
}

impl CoordinatorApp<WriteBehind<DeviceId>> {
    /// A coordinator whose fleet ledger is **durable**: the write-behind
    /// journaled store in `dir`, recovered on open — a restarted
    /// coordinator starts from the fleet-wide trust it already learned
    /// instead of re-learning the network from scratch. The report fold
    /// path is unchanged (the sharded front serves the pool); frames
    /// reach disk on [`Self::sync_ledger`], buffer spills, and drop.
    pub fn durable(dir: impl AsRef<Path>) -> Result<Self, TrustError> {
        let backend = WriteBehind::open_with(
            dir,
            LogOptions::default(),
            ShardedBackend::with_shards_for_writers(LEDGER_WRITERS),
        )?;
        Ok(Self::with_ledger(TrustEngine::with_backend(backend)))
    }

    /// Commits every pending report to the ledger and forces the journal
    /// to disk (fsync included). The shared-handle path — works on the
    /// `Arc`-shared engine the pool workers also hold.
    pub fn sync_ledger(&self) -> Result<(), TrustError> {
        self.flush_pending();
        self.ledger.backend().sync()
    }

    /// Compacts the ledger's log into a fresh snapshot so replay time and
    /// disk use stay bounded over a long deployment. Compaction needs
    /// exclusive access to the engine, which the `Arc`-shared ledger only
    /// has between pool dispatches — returns `Ok(false)` (try again later)
    /// if a dispatch still holds a reference.
    pub fn compact_ledger(&mut self) -> Result<bool, TrustError> {
        self.flush_pending();
        match Arc::get_mut(&mut self.ledger) {
            Some(engine) => {
                engine.backend_mut().compact()?;
                Ok(true)
            }
            None => Ok(false),
        }
    }
}

impl<B: ConcurrentTrustBackend<DeviceId> + Send + 'static> CoordinatorApp<B> {
    /// A coordinator over a caller-built ledger engine (pre-warmed, sized,
    /// or durable — [`Self::durable`] is this plus [`WriteBehind::open_with`]).
    pub fn with_ledger(ledger: TrustEngine<DeviceId, B>) -> Self {
        CoordinatorApp {
            joined: Vec::new(),
            reports: Vec::new(),
            ledger: Arc::new(ledger),
            pool: ObserverPool::new(LEDGER_WRITERS),
            pending: RefCell::new(Vec::new()),
        }
    }

    /// Queues one reported net profit for the ledger. Realized profit lies
    /// in `[-1, 1]`; it maps onto the unit-range observation as pure gain
    /// (profit > 0) or pure damage (profit < 0). Non-finite reports (a
    /// buggy or malicious device) are dropped — the clamped construction
    /// plus the `observe_batch` validation guarantee NaN never enters the
    /// ledger, whose ranking comparator assumes finite profits.
    fn fold_report(&mut self, selected: DeviceId, net_profit: f64) {
        let Some(obs) = report_observation(net_profit) else {
            return;
        };
        let pending = self.pending.get_mut();
        pending.push((selected, LEDGER_TASK, obs));
        if pending.len() >= LEDGER_FLUSH {
            let batch = std::mem::take(pending);
            // observations are pre-clamped, so the only reachable error
            // is a fold panic inside the pool
            self.pool
                .observe_batch(&self.ledger, &batch, &ForgettingFactors::figures())
                .unwrap_or_else(|e| panic!("ledger flush failed: {e}"));
        }
    }

    /// The fleet-wide ledger, with all received reports committed.
    pub fn ledger(&self) -> &TrustEngine<DeviceId, B> {
        self.flush_pending();
        &self.ledger
    }

    /// Trustees ranked by fleet-wide expected net profit, best first
    /// (ties broken by id, so the ranking is deterministic).
    pub fn trustee_ranking(&self) -> Vec<(DeviceId, f64)> {
        let ledger = self.ledger();
        let mut ranked: Vec<(DeviceId, f64)> = ledger
            .known_peers()
            .into_iter()
            .filter_map(|peer| {
                ledger.record(peer, LEDGER_TASK).map(|r| (peer, r.expected_net_profit()))
            })
            .collect();
        ranked.sort_by(|a, b| {
            b.1.partial_cmp(&a.1).expect("profits are never NaN").then(a.0.cmp(&b.0))
        });
        ranked
    }
}

impl<B: ConcurrentTrustBackend<DeviceId>> CoordinatorApp<B> {
    /// Flushes any pending tail so reads see every report received so far.
    /// Tails are (by construction) smaller than `LEDGER_FLUSH` — too small
    /// to amortize a pool dispatch — so they fold inline through the
    /// backend's shared handle instead. Also runs on drop, so queued
    /// reports reach the ledger (and a durable ledger's journal) even
    /// without a final read or sync.
    fn flush_pending(&self) {
        let batch = std::mem::take(&mut *self.pending.borrow_mut());
        if !batch.is_empty() {
            self.ledger
                .observe_batch_shared(&batch, &ForgettingFactors::figures())
                .expect("queued observations are clamped to the unit range");
        }
    }
}

impl<B: ConcurrentTrustBackend<DeviceId>> Drop for CoordinatorApp<B> {
    /// Queued reports are folded before the ledger drops: a durable
    /// coordinator that shuts down mid-slate loses nothing (the backend's
    /// journal flushes when the engine drops right after).
    fn drop(&mut self) {
        self.flush_pending();
    }
}

impl<B: ConcurrentTrustBackend<DeviceId> + Send + 'static> Application for CoordinatorApp<B> {
    fn on_frame(&mut self, ctx: &mut Ctx<'_>, frame: &Frame) {
        match frame.payload {
            Payload::AssocRequest => {
                self.joined.push(frame.src);
                ctx.send(frame.src, Payload::AssocResponse);
            }
            Payload::Report { selected, net_profit } => {
                self.reports.push(CollectedReport {
                    at: ctx.now,
                    reporter: frame.src,
                    selected,
                    net_profit,
                });
                self.fold_report(selected, net_profit);
            }
            _ => {}
        }
    }

    fn as_any(&self) -> &dyn Any {
        self
    }
}

// ---------------------------------------------------------------------------
// Service-backed mode
// ---------------------------------------------------------------------------

/// The coordinator's **service-backed mode**: instead of owning a ledger
/// engine (plus a worker pool to fold into it), the coordinator holds a
/// [`TrustServiceHandle`] and forwards every trustor report through it as
/// a completed delegation session — the trustors' feedback literally goes
/// through the handle, and the
/// [`TrustService`](siot_core::service::TrustService) actor owns the
/// engine on its own thread.
///
/// What that buys over [`CoordinatorApp`]:
///
/// * the ledger can be **shared**: other processes' handles (an operator
///   console, a ranking endpoint, more coordinators) query and commit to
///   the same engine concurrently, and the actor serializes them;
/// * the coordinator's event loop never folds — and never *waits*:
///   reports are built into completed sessions locally and **submitted
///   without awaiting** ([`TrustServiceHandle::submit`]), so the actor's
///   drain finds real batches and each `Report` frame costs one channel
///   send, not a cross-thread round trip;
/// * durability is the service's problem: spawn it over a
///   [`LogBackend`](siot_core::log_backend::LogBackend) or
///   [`WriteBehind`] engine and the service's graceful shutdown drains +
///   flushes, so every acked report survives a restart.
///
/// Receipts are settled lazily — on [`Self::settle`],
/// [`Self::sync_ledger`], [`Self::trustee_ranking`], or drop. Reads are
/// still consistent without settling first: the ranking queries travel
/// the same FIFO mailbox as the submitted commits, so they observe every
/// prior report. Reports the service refused (it was shut down underneath
/// the coordinator) are counted by [`Self::rejected`] instead of silently
/// vanishing.
///
/// The ledger can also be a **sharded** fleet: [`Self::sharded`] takes a
/// [`ShardedTrustServiceHandle`], so the shard count is the coordinator's
/// scaling knob — each report routes straight to the shard owning the
/// selected trustee, and the ranking merges all shards in one aligned
/// global cut.
///
/// And it can live in **another process**: [`Self::remote`] takes a
/// [`RemoteTrustServiceHandle`], so the fleet ledger is whatever service a
/// [`RemoteTrustServer`](siot_core::service::RemoteTrustServer) exposes
/// over TCP — the report path is identical (eager pipelined submits, lazy
/// settling), just over a socket instead of a mailbox.
///
/// Or across **several** processes: [`Self::fleet`] takes a
/// [`FleetTrustHandle`], which routes each report to the node owning the
/// selected trustee, commits through the idempotent tagged path (a
/// report retried across a node restart replays instead of
/// double-counting), and keeps degrading gracefully — a down node costs
/// only its own trustees' reports, counted in [`Self::rejected`] like
/// any other refusal.
pub struct ServedCoordinatorApp {
    /// Devices that completed association.
    pub joined: Vec<DeviceId>,
    /// Reports collected from trustors.
    pub reports: Vec<CollectedReport>,
    /// Reports the trust service refused so far (see [`Self::rejected`]).
    rejected: std::cell::Cell<usize>,
    /// Receipt futures of submitted-but-unsettled reports.
    pending: RefCell<Vec<ReceiptPending>>,
    handle: LedgerHandle,
    /// Empty engine the pre-committed requests activate against (the
    /// decision was the reporting trustor's; nothing is read from it).
    scratch: TrustEngine<DeviceId>,
    ledger_task: Task,
}

/// The service the coordinator reports through: one actor, a sharded
/// fleet routed by selected trustee, or a remote service over TCP.
enum LedgerHandle {
    Single(TrustServiceHandle<DeviceId>),
    Sharded(ShardedTrustServiceHandle<DeviceId>),
    Remote(RemoteTrustServiceHandle<DeviceId>),
    Fleet(FleetTrustHandle<DeviceId>),
}

/// One submitted report's receipt future: a local mailbox oneshot, a
/// remote wire response, or a fleet submission (reconnects and retries
/// boxed inside) — settled uniformly either way.
enum ReceiptPending {
    Local(Pending<DelegationReceipt<DeviceId>>),
    Remote(RemotePending<DelegationReceipt<DeviceId>>),
    Fleet(
        std::pin::Pin<
            Box<dyn std::future::Future<Output = Result<DelegationReceipt<DeviceId>, TrustError>>>,
        >,
    ),
}

impl std::future::Future for ReceiptPending {
    type Output = Result<DelegationReceipt<DeviceId>, TrustError>;

    fn poll(
        self: std::pin::Pin<&mut Self>,
        cx: &mut std::task::Context<'_>,
    ) -> std::task::Poll<Self::Output> {
        match self.get_mut() {
            ReceiptPending::Local(p) => std::pin::Pin::new(p).poll(cx),
            ReceiptPending::Remote(p) => std::pin::Pin::new(p).poll(cx),
            ReceiptPending::Fleet(p) => p.as_mut().poll(cx),
        }
    }
}

impl LedgerHandle {
    fn submit(&self, completed: CompletedDelegation<DeviceId>) -> ReceiptPending {
        match self {
            LedgerHandle::Single(h) => ReceiptPending::Local(h.submit(completed)),
            LedgerHandle::Sharded(h) => ReceiptPending::Local(h.submit(completed)),
            LedgerHandle::Remote(h) => ReceiptPending::Remote(h.submit(completed)),
            LedgerHandle::Fleet(h) => ReceiptPending::Fleet(Box::pin(h.submit(completed))),
        }
    }

    fn task_records(&self, task: TaskId) -> Result<Vec<(DeviceId, TrustRecord)>, TrustError> {
        match self {
            LedgerHandle::Single(h) => block_on(h.task_records(task)),
            // a ranking spanning shards should rank a state that actually
            // existed: one aligned global cut
            LedgerHandle::Sharded(h) => block_on(h.task_records_with(task, Freshness::Aligned)),
            // the server runs the same barrier when its endpoint is sharded
            LedgerHandle::Remote(h) => block_on(h.task_records_with(task, Freshness::Aligned)),
            // aligned per node; a down node's range is absent rather than
            // failing the whole ranking
            LedgerHandle::Fleet(h) => {
                block_on(h.task_records_cut(task, Freshness::Aligned)).map(|cut| cut.value)
            }
        }
    }

    fn flush(&self) -> Result<(), TrustError> {
        match self {
            LedgerHandle::Single(h) => block_on(h.flush()),
            LedgerHandle::Sharded(h) => block_on(h.flush()),
            LedgerHandle::Remote(h) => block_on(h.flush()),
            LedgerHandle::Fleet(h) => block_on(h.flush()),
        }
    }
}

impl ServedCoordinatorApp {
    /// A coordinator forwarding its fleet ledger through `handle`.
    pub fn new(handle: TrustServiceHandle<DeviceId>) -> Self {
        Self::with_ledger_handle(LedgerHandle::Single(handle))
    }

    /// A coordinator whose fleet ledger is a **sharded** service: reports
    /// route by selected trustee to the owning shard, so the shard count
    /// behind `handle` is the coordinator's write-throughput knob.
    pub fn sharded(handle: ShardedTrustServiceHandle<DeviceId>) -> Self {
        Self::with_ledger_handle(LedgerHandle::Sharded(handle))
    }

    /// A coordinator whose fleet ledger lives in **another process**:
    /// reports travel a [`RemoteTrustServiceHandle`]'s TCP connection to
    /// whatever service (single or sharded) the far end serves. Submits
    /// pipeline over the socket exactly as they pipeline into a local
    /// mailbox, and the ranking still reads one aligned cut — the server
    /// runs the rendezvous barrier on the coordinator's behalf.
    pub fn remote(handle: RemoteTrustServiceHandle<DeviceId>) -> Self {
        Self::with_ledger_handle(LedgerHandle::Remote(handle))
    }

    /// A coordinator whose fleet ledger spans **several processes**: a
    /// [`FleetTrustHandle`] routes each report to the node owning the
    /// selected trustee and commits it with an idempotency tag, so
    /// reports survive node deaths, reconnects, and restarts without
    /// ever double-counting. Rankings merge the live nodes' aligned
    /// cuts; a down node's trustees are simply absent until it returns.
    pub fn fleet(handle: FleetTrustHandle<DeviceId>) -> Self {
        Self::with_ledger_handle(LedgerHandle::Fleet(handle))
    }

    fn with_ledger_handle(handle: LedgerHandle) -> Self {
        ServedCoordinatorApp {
            joined: Vec::new(),
            reports: Vec::new(),
            rejected: std::cell::Cell::new(0),
            pending: RefCell::new(Vec::new()),
            handle,
            scratch: TrustEngine::new(),
            ledger_task: Task::uniform(LEDGER_TASK, [CharacteristicId(0)])
                .expect("one characteristic"),
        }
    }

    /// How many shards the ledger folds across: 1 in single-service mode,
    /// the fleet's shard count in [`Self::sharded`] mode. A remote ledger
    /// is asked over the wire (its per-shard stats), falling back to 1 if
    /// the far service is gone.
    pub fn shard_count(&self) -> usize {
        match &self.handle {
            LedgerHandle::Single(_) => 1,
            LedgerHandle::Sharded(h) => h.shard_count(),
            LedgerHandle::Remote(h) => block_on(h.shard_stats()).map_or(1, |s| s.len().max(1)),
            // the fleet folds across the sum of every reachable node's
            // shards
            LedgerHandle::Fleet(h) => block_on(h.node_stats()).map_or(1, |nodes| {
                nodes.iter().filter_map(|n| n.shards.as_ref().map(Vec::len)).sum::<usize>().max(1)
            }),
        }
    }

    /// One report as a committed session over the wire: the decision was
    /// the reporting trustor's, so the session is completed locally and
    /// submitted without awaiting — the actor folds it batched with
    /// whatever else its next drain finds. In sharded mode the submission
    /// routes straight to the shard owning `selected`.
    fn fold_report(&mut self, selected: DeviceId, net_profit: f64) {
        let Some(obs) = report_observation(net_profit) else {
            return;
        };
        let completed = DelegationRequest::new(
            selected,
            &self.ledger_task,
            Goal::ANY,
            Context::amicable(LEDGER_TASK),
        )
        .committed()
        .activate(&self.scratch)
        .finish(DelegationOutcome::observed(obs))
        .expect("report observations are clamped to the unit range");
        self.pending.get_mut().push(self.handle.submit(completed));
        // bound the receipt backlog like CoordinatorApp bounds its pending
        // slate: by the time a full slate has been submitted, the actor
        // has long drained the oldest, so settling is resolution, not a
        // stall
        if self.pending.get_mut().len() >= LEDGER_FLUSH {
            self.settle();
        }
    }

    /// Resolves every outstanding receipt, counting refusals (the service
    /// stopped before folding them) into [`Self::rejected`]. Cheap when
    /// the actor has already processed the backlog.
    pub fn settle(&self) {
        for receipt in self.pending.borrow_mut().drain(..) {
            if block_on(receipt).is_err() {
                self.rejected.set(self.rejected.get() + 1);
            }
        }
    }

    /// Reports the trust service refused (it was shut down underneath the
    /// coordinator), settled so the count is current.
    pub fn rejected(&self) -> usize {
        self.settle();
        self.rejected.get()
    }

    /// Trustees ranked by fleet-wide expected net profit, best first (ties
    /// broken by id) — computed from the service's ledger, so the ranking
    /// reflects every report the actor has acked, from this coordinator
    /// and any other handle holder. In sharded mode the snapshot is one
    /// [`Freshness::Aligned`] global cut across every shard.
    pub fn trustee_ranking(&self) -> Result<Vec<(DeviceId, f64)>, TrustError> {
        self.settle();
        // one atomic snapshot query — not a known_peers + per-peer record
        // loop, which would cross the mailbox once per trustee
        let mut ranked: Vec<(DeviceId, f64)> = self
            .handle
            .task_records(LEDGER_TASK)?
            .into_iter()
            .map(|(peer, rec)| (peer, rec.expected_net_profit()))
            .collect();
        ranked.sort_by(|a, b| {
            b.1.partial_cmp(&a.1).expect("profits are never NaN").then(a.0.cmp(&b.0))
        });
        Ok(ranked)
    }

    /// Forces the service's ledger down to stable storage — the durable
    /// parallel of [`CoordinatorApp::sync_ledger`], through the handle
    /// (every shard's engine, in sharded mode). Settles first, so
    /// "flushed" covers every report submitted so far.
    pub fn sync_ledger(&self) -> Result<(), TrustError> {
        self.settle();
        self.handle.flush()
    }
}

impl Drop for ServedCoordinatorApp {
    /// Outstanding receipts are settled so refusals are counted; the
    /// reports themselves already sit in the actor's mailbox (submission
    /// is the send), so nothing is lost either way.
    fn drop(&mut self) {
        self.settle();
    }
}

impl Application for ServedCoordinatorApp {
    fn on_frame(&mut self, ctx: &mut Ctx<'_>, frame: &Frame) {
        match frame.payload {
            Payload::AssocRequest => {
                self.joined.push(frame.src);
                ctx.send(frame.src, Payload::AssocResponse);
            }
            Payload::Report { selected, net_profit } => {
                self.reports.push(CollectedReport {
                    at: ctx.now,
                    reporter: frame.src,
                    selected,
                    net_profit,
                });
                self.fold_report(selected, net_profit);
            }
            _ => {}
        }
    }

    fn as_any(&self) -> &dyn Any {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::device::DeviceKind;
    use crate::network::IotNetwork;
    use crate::radio::RadioModel;
    use siot_core::task::TaskId;

    /// A device that associates and then reports.
    struct Reporter;

    impl Application for Reporter {
        fn on_start(&mut self, ctx: &mut Ctx<'_>) {
            ctx.send(DeviceId(0), Payload::AssocRequest);
            ctx.set_timer(SimTime::millis(50), 0);
        }
        fn on_timer(&mut self, ctx: &mut Ctx<'_>, _key: u64) {
            ctx.send(DeviceId(0), Payload::Report { selected: DeviceId(9), net_profit: 0.42 });
        }
        fn as_any(&self) -> &dyn Any {
            self
        }
    }

    #[test]
    fn coordinator_collects_joins_and_reports() {
        let mut net = IotNetwork::new(3);
        net.set_radio(RadioModel { loss: 0.0, ..RadioModel::default() });
        let coord =
            net.add_device(DeviceKind::Coordinator, (0.0, 0.0), Box::new(CoordinatorApp::new()));
        for i in 0..3 {
            net.add_device(DeviceKind::Trustor, (5.0 * i as f64, 5.0), Box::new(Reporter));
        }
        net.start();
        net.run_to_idle();
        let app: &CoordinatorApp = net.app_as(coord).unwrap();
        assert_eq!(app.joined.len(), 3);
        assert_eq!(app.reports.len(), 3);
        for r in &app.reports {
            assert_eq!(r.selected, DeviceId(9));
            assert!((r.net_profit - 0.42).abs() < 1e-12);
            assert!(r.at > SimTime::ZERO);
        }
        // the ledger folded all three reports about the one trustee
        let rec = app.ledger().record(DeviceId(9), super::LEDGER_TASK).unwrap();
        assert_eq!(rec.interactions, 3);
        assert!(rec.g_hat > 0.0);
        let ranking = app.trustee_ranking();
        assert_eq!(ranking.len(), 1);
        assert_eq!(ranking[0].0, DeviceId(9));
        assert!(ranking[0].1 > 0.0);
    }

    #[test]
    fn ranking_orders_by_reported_profit() {
        let mut app = CoordinatorApp::new();
        // 15 reports: one LEDGER_FLUSH-sized batch would not fill, so this
        // also exercises the lazy tail flush on read
        for _ in 0..5 {
            app.fold_report(DeviceId(3), 0.8);
            app.fold_report(DeviceId(5), -0.4);
            app.fold_report(DeviceId(4), 0.2);
        }
        // hostile reports must neither enter the ledger nor panic the sort
        app.fold_report(DeviceId(7), f64::NAN);
        app.fold_report(DeviceId(8), f64::INFINITY);
        assert!(app.ledger().record(DeviceId(7), super::LEDGER_TASK).is_none());
        let ranking = app.trustee_ranking();
        assert_eq!(
            ranking.iter().map(|&(d, _)| d).collect::<Vec<_>>(),
            vec![DeviceId(3), DeviceId(4), DeviceId(5)]
        );
        assert!(ranking[0].1 > ranking[1].1 && ranking[1].1 > ranking[2].1);
    }

    #[test]
    fn full_slates_flush_through_the_pool() {
        // enough reports to cross LEDGER_FLUSH, so the pool dispatch path
        // (not just the inline tail flush) folds most of the ledger
        let mut app = CoordinatorApp::new();
        for i in 0..(super::LEDGER_FLUSH + 100) {
            app.fold_report(DeviceId((i % 7) as u32), 0.5);
        }
        let total: u64 = app
            .ledger()
            .known_peers()
            .into_iter()
            .filter_map(|d| app.ledger().record(d, super::LEDGER_TASK))
            .map(|r| r.interactions)
            .sum();
        assert_eq!(total, (super::LEDGER_FLUSH + 100) as u64);
        assert_eq!(app.trustee_ranking().len(), 7);
    }

    #[test]
    fn durable_ledger_survives_coordinator_restart() {
        let dir = std::env::temp_dir().join(format!("siot-coord-ledger-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        {
            let mut app = CoordinatorApp::durable(&dir).expect("fresh ledger dir opens");
            for _ in 0..5 {
                app.fold_report(DeviceId(3), 0.8);
                app.fold_report(DeviceId(5), -0.4);
                app.fold_report(DeviceId(4), 0.2);
            }
            app.sync_ledger().expect("ledger syncs to disk");
            // a tail report queued *after* the sync — never read, never
            // synced — still persists: drop folds the pending slate and
            // the journal flushes when the engine drops
            app.fold_report(DeviceId(3), 0.6);
        }
        // "restart": a new coordinator process over the same directory
        let mut app = CoordinatorApp::durable(&dir).expect("recovered ledger opens");
        let rec = app.ledger().record(DeviceId(3), super::LEDGER_TASK).expect("recovered");
        assert_eq!(rec.interactions, 6);
        let ranking = app.trustee_ranking();
        assert_eq!(
            ranking.iter().map(|&(d, _)| d).collect::<Vec<_>>(),
            vec![DeviceId(3), DeviceId(4), DeviceId(5)],
            "the recovered coordinator ranks from remembered trust"
        );
        // compaction keeps the on-disk footprint bounded and the state
        // intact across yet another restart
        assert!(app.compact_ledger().expect("compaction succeeds"), "no dispatch in flight");
        drop(app);
        let app = CoordinatorApp::durable(&dir).expect("post-compaction reopen");
        assert_eq!(app.trustee_ranking().len(), 3);
        assert_eq!(
            app.ledger().record(DeviceId(3), super::LEDGER_TASK).expect("compacted").interactions,
            6
        );
        drop(app);
        std::fs::remove_dir_all(&dir).expect("scratch removable");
    }

    #[test]
    fn served_coordinator_reports_through_the_handle() {
        use siot_core::service::{ServiceOptions, TrustService};

        let service = TrustService::spawn(
            TrustEngine::<DeviceId, ShardedBackend<DeviceId>>::new(),
            ServiceOptions::default(),
        );
        let mut net = IotNetwork::new(3);
        net.set_radio(RadioModel { loss: 0.0, ..RadioModel::default() });
        let coord = net.add_device(
            DeviceKind::Coordinator,
            (0.0, 0.0),
            Box::new(ServedCoordinatorApp::new(service.handle())),
        );
        for i in 0..3 {
            net.add_device(DeviceKind::Trustor, (5.0 * i as f64, 5.0), Box::new(Reporter));
        }
        net.start();
        net.run_to_idle();
        let app: &ServedCoordinatorApp = net.app_as(coord).unwrap();
        assert_eq!(app.joined.len(), 3);
        assert_eq!(app.reports.len(), 3);
        assert_eq!(app.rejected(), 0);

        // every report was acked into the service's ledger…
        let ranking = app.trustee_ranking().unwrap();
        assert_eq!(ranking.len(), 1);
        assert_eq!(ranking[0].0, DeviceId(9));
        assert!(ranking[0].1 > 0.0);

        // …and the engine handed back on shutdown holds all three folds
        let engine = service.shutdown().unwrap();
        assert_eq!(engine.record(DeviceId(9), super::LEDGER_TASK).unwrap().interactions, 3);
    }

    #[test]
    fn served_coordinator_durable_ledger_survives_service_restart() {
        use siot_core::log_backend::LogBackend;
        use siot_core::service::{ServiceOptions, TrustService};

        let dir = std::env::temp_dir().join(format!("siot-served-ledger-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        {
            let engine = TrustEngine::<DeviceId, LogBackend<DeviceId>>::open(&dir).unwrap();
            let service = TrustService::spawn(engine, ServiceOptions::default());
            let mut app = ServedCoordinatorApp::new(service.handle());
            for _ in 0..5 {
                app.fold_report(DeviceId(3), 0.8);
                app.fold_report(DeviceId(5), -0.4);
                app.fold_report(DeviceId(4), 0.2);
            }
            // hostile reports never reach the service
            app.fold_report(DeviceId(7), f64::NAN);
            assert_eq!(app.rejected(), 0);
            // graceful shutdown drains and flushes: every acked report is
            // on disk before the actor exits
            service.shutdown().unwrap();
            // the service is gone: further reports are counted, not lost
            // silently
            app.fold_report(DeviceId(3), 0.6);
            assert_eq!(app.rejected(), 1);
        }
        let engine = TrustEngine::<DeviceId, LogBackend<DeviceId>>::open(&dir).unwrap();
        assert_eq!(engine.record(DeviceId(3), super::LEDGER_TASK).unwrap().interactions, 5);
        assert!(engine.record(DeviceId(7), super::LEDGER_TASK).is_none());
        assert_eq!(engine.known_peers(), vec![DeviceId(3), DeviceId(4), DeviceId(5)]);
        drop(engine);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn served_coordinator_reports_through_sharded_handles() {
        use siot_core::service::{ServiceOptions, ShardedTrustService};

        let service = ShardedTrustService::spawn_sharded(3, ServiceOptions::default(), |_| {
            TrustEngine::<DeviceId, ShardedBackend<DeviceId>>::new()
        });
        let mut net = IotNetwork::new(3);
        net.set_radio(RadioModel { loss: 0.0, ..RadioModel::default() });
        let coord = net.add_device(
            DeviceKind::Coordinator,
            (0.0, 0.0),
            Box::new(ServedCoordinatorApp::sharded(service.handle())),
        );
        for i in 0..3 {
            net.add_device(DeviceKind::Trustor, (5.0 * i as f64, 5.0), Box::new(Reporter));
        }
        net.start();
        net.run_to_idle();
        let app: &ServedCoordinatorApp = net.app_as(coord).unwrap();
        assert_eq!(app.joined.len(), 3);
        assert_eq!(app.reports.len(), 3);
        assert_eq!(app.rejected(), 0);
        assert_eq!(app.shard_count(), 3);

        // the aligned cross-shard ranking sees every acked report
        let ranking = app.trustee_ranking().unwrap();
        assert_eq!(ranking.len(), 1);
        assert_eq!(ranking[0].0, DeviceId(9));
        assert!(ranking[0].1 > 0.0);

        // all three folds live on the one shard that owns DeviceId(9)
        let engines = service.shutdown().unwrap();
        let total: u64 = engines
            .iter()
            .filter_map(|e| e.record(DeviceId(9), super::LEDGER_TASK))
            .map(|r| r.interactions)
            .sum();
        assert_eq!(total, 3);
    }

    #[test]
    fn served_coordinator_reports_over_the_wire() {
        use siot_core::service::{
            RemoteTrustServer, RemoteTrustServiceHandle, ServiceOptions, ShardedTrustService,
        };

        // the "ledger process": a sharded fleet behind a TCP server
        let service = ShardedTrustService::spawn_sharded(2, ServiceOptions::default(), |_| {
            TrustEngine::<DeviceId, ShardedBackend<DeviceId>>::new()
        });
        let server =
            RemoteTrustServer::bind("127.0.0.1:0", service.handle()).expect("loopback bind");
        let addr = server.local_addr();

        // the "coordinator process": a remote-backed coordinator
        let remote = RemoteTrustServiceHandle::<DeviceId>::connect(addr).expect("loopback connect");
        let mut net = IotNetwork::new(3);
        net.set_radio(RadioModel { loss: 0.0, ..RadioModel::default() });
        let coord = net.add_device(
            DeviceKind::Coordinator,
            (0.0, 0.0),
            Box::new(ServedCoordinatorApp::remote(remote)),
        );
        for i in 0..3 {
            net.add_device(DeviceKind::Trustor, (5.0 * i as f64, 5.0), Box::new(Reporter));
        }
        net.start();
        net.run_to_idle();
        let app: &ServedCoordinatorApp = net.app_as(coord).unwrap();
        assert_eq!(app.joined.len(), 3);
        assert_eq!(app.reports.len(), 3);
        assert_eq!(app.rejected(), 0);
        // the wire answers the shard-count question too
        assert_eq!(app.shard_count(), 2);

        // the aligned cross-process ranking sees every acked report
        let ranking = app.trustee_ranking().unwrap();
        assert_eq!(ranking.len(), 1);
        assert_eq!(ranking[0].0, DeviceId(9));
        assert!(ranking[0].1 > 0.0);

        // the served fleet holds all three folds
        server.shutdown();
        let engines = service.shutdown().unwrap();
        let total: u64 = engines
            .iter()
            .filter_map(|e| e.record(DeviceId(9), super::LEDGER_TASK))
            .map(|r| r.interactions)
            .sum();
        assert_eq!(total, 3);
    }

    #[test]
    fn served_coordinator_reports_through_a_fleet() {
        use siot_core::service::{
            FleetTrustHandle, RemoteTrustServer, ServiceOptions, ShardedTrustService,
        };

        // two "ledger processes", each a 2-shard fleet behind TCP
        let services: Vec<_> = (0..2)
            .map(|_| {
                ShardedTrustService::spawn_sharded(2, ServiceOptions::default(), |_| {
                    TrustEngine::<DeviceId, ShardedBackend<DeviceId>>::new()
                })
            })
            .collect();
        let servers: Vec<_> = services
            .iter()
            .map(|s| RemoteTrustServer::bind("127.0.0.1:0", s.handle()).expect("loopback bind"))
            .collect();
        let addrs: Vec<String> = servers.iter().map(|s| s.local_addr().to_string()).collect();
        let fleet = FleetTrustHandle::<DeviceId>::connect(addrs).expect("fleet connects");

        let mut net = IotNetwork::new(3);
        net.set_radio(RadioModel { loss: 0.0, ..RadioModel::default() });
        let coord = net.add_device(
            DeviceKind::Coordinator,
            (0.0, 0.0),
            Box::new(ServedCoordinatorApp::fleet(fleet)),
        );
        for i in 0..3 {
            net.add_device(DeviceKind::Trustor, (5.0 * i as f64, 5.0), Box::new(Reporter));
        }
        net.start();
        net.run_to_idle();
        let app: &ServedCoordinatorApp = net.app_as(coord).unwrap();
        assert_eq!(app.joined.len(), 3);
        assert_eq!(app.reports.len(), 3);
        assert_eq!(app.rejected(), 0);
        // 2 nodes × 2 shards, summed over the fleet
        assert_eq!(app.shard_count(), 4);

        // the merged cross-node ranking sees every acked report
        let ranking = app.trustee_ranking().unwrap();
        assert_eq!(ranking.len(), 1);
        assert_eq!(ranking[0].0, DeviceId(9));
        assert!(ranking[0].1 > 0.0);

        // all three folds live on the one node (and shard) owning
        // DeviceId(9) — retried tagged commits never double-counted
        for server in servers {
            server.shutdown();
        }
        let total: u64 = services
            .into_iter()
            .flat_map(|s| s.shutdown().unwrap())
            .filter_map(|e| e.record(DeviceId(9), super::LEDGER_TASK).map(|r| r.interactions))
            .sum();
        assert_eq!(total, 3);
    }

    #[test]
    fn served_coordinator_sharded_durable_ledger_survives_restart() {
        use siot_core::log_backend::LogBackend;
        use siot_core::service::{ServiceOptions, ShardedTrustService};

        let root = std::env::temp_dir().join(format!("siot-served-sharded-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&root);
        let shards = 2usize;
        let spawn =
            |root: &std::path::Path| -> ShardedTrustService<DeviceId, LogBackend<DeviceId>> {
                ShardedTrustService::try_spawn_sharded(shards, ServiceOptions::default(), |shard| {
                    TrustEngine::open_shard(root, shard)
                })
                .expect("shard dirs open")
            };
        {
            let service = spawn(&root);
            let mut app = ServedCoordinatorApp::sharded(service.handle());
            for _ in 0..5 {
                app.fold_report(DeviceId(3), 0.8);
                app.fold_report(DeviceId(5), -0.4);
                app.fold_report(DeviceId(4), 0.2);
            }
            assert_eq!(app.rejected(), 0);
            // graceful fleet shutdown: every shard drains and flushes
            service.shutdown().unwrap();
        }
        // "restart": the same root, the same shard count — the recovered
        // fleet ranks from remembered trust
        let service = spawn(&root);
        let app = ServedCoordinatorApp::sharded(service.handle());
        let ranking = app.trustee_ranking().unwrap();
        assert_eq!(
            ranking.iter().map(|&(d, _)| d).collect::<Vec<_>>(),
            vec![DeviceId(3), DeviceId(4), DeviceId(5)]
        );
        let engines = service.shutdown().unwrap();
        let total: usize = engines.iter().map(|e| e.record_count()).sum();
        assert_eq!(total, 3);
        drop(engines);
        drop(app);
        std::fs::remove_dir_all(&root).unwrap();
    }

    #[test]
    fn coordinator_ignores_unrelated_frames() {
        let mut net = IotNetwork::new(4);
        net.set_radio(RadioModel { loss: 0.0, ..RadioModel::default() });
        struct Noise;
        impl Application for Noise {
            fn on_start(&mut self, ctx: &mut Ctx<'_>) {
                ctx.send(DeviceId(0), Payload::TaskRequest { task: TaskId(0) });
                ctx.send(DeviceId(0), Payload::Raw(32));
            }
            fn as_any(&self) -> &dyn Any {
                self
            }
        }
        let coord =
            net.add_device(DeviceKind::Coordinator, (0.0, 0.0), Box::new(CoordinatorApp::new()));
        net.add_device(DeviceKind::Trustor, (5.0, 0.0), Box::new(Noise));
        net.start();
        net.run_to_idle();
        let app: &CoordinatorApp = net.app_as(coord).unwrap();
        assert!(app.joined.is_empty());
        assert!(app.reports.is_empty());
    }
}
