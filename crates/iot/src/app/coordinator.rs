//! The coordinator: first device on the network, answers association
//! requests and collects end-of-run reports over the serial-port
//! equivalent (§5.2).

use crate::device::DeviceId;
use crate::frame::{Frame, Payload};
use crate::network::{Application, Ctx};
use crate::time::SimTime;
use std::any::Any;

/// One collected report.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CollectedReport {
    /// When the report arrived.
    pub at: SimTime,
    /// The reporting trustor.
    pub reporter: DeviceId,
    /// The trustee that trustor selected.
    pub selected: DeviceId,
    /// The trustor's realized net profit.
    pub net_profit: f64,
}

/// Coordinator application state.
#[derive(Debug, Default)]
pub struct CoordinatorApp {
    /// Devices that completed association.
    pub joined: Vec<DeviceId>,
    /// Reports collected from trustors.
    pub reports: Vec<CollectedReport>,
}

impl CoordinatorApp {
    /// A fresh coordinator.
    pub fn new() -> Self {
        Self::default()
    }
}

impl Application for CoordinatorApp {
    fn on_frame(&mut self, ctx: &mut Ctx<'_>, frame: &Frame) {
        match frame.payload {
            Payload::AssocRequest => {
                self.joined.push(frame.src);
                ctx.send(frame.src, Payload::AssocResponse);
            }
            Payload::Report { selected, net_profit } => {
                self.reports.push(CollectedReport {
                    at: ctx.now,
                    reporter: frame.src,
                    selected,
                    net_profit,
                });
            }
            _ => {}
        }
    }

    fn as_any(&self) -> &dyn Any {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::device::DeviceKind;
    use crate::network::IotNetwork;
    use crate::radio::RadioModel;
    use siot_core::task::TaskId;

    /// A device that associates and then reports.
    struct Reporter;

    impl Application for Reporter {
        fn on_start(&mut self, ctx: &mut Ctx<'_>) {
            ctx.send(DeviceId(0), Payload::AssocRequest);
            ctx.set_timer(SimTime::millis(50), 0);
        }
        fn on_timer(&mut self, ctx: &mut Ctx<'_>, _key: u64) {
            ctx.send(
                DeviceId(0),
                Payload::Report { selected: DeviceId(9), net_profit: 0.42 },
            );
        }
        fn as_any(&self) -> &dyn Any {
            self
        }
    }

    #[test]
    fn coordinator_collects_joins_and_reports() {
        let mut net = IotNetwork::new(3);
        net.set_radio(RadioModel { loss: 0.0, ..RadioModel::default() });
        let coord = net.add_device(
            DeviceKind::Coordinator,
            (0.0, 0.0),
            Box::new(CoordinatorApp::new()),
        );
        for i in 0..3 {
            net.add_device(DeviceKind::Trustor, (5.0 * i as f64, 5.0), Box::new(Reporter));
        }
        net.start();
        net.run_to_idle();
        let app: &CoordinatorApp = net.app_as(coord).unwrap();
        assert_eq!(app.joined.len(), 3);
        assert_eq!(app.reports.len(), 3);
        for r in &app.reports {
            assert_eq!(r.selected, DeviceId(9));
            assert!((r.net_profit - 0.42).abs() < 1e-12);
            assert!(r.at > SimTime::ZERO);
        }
    }

    #[test]
    fn coordinator_ignores_unrelated_frames() {
        let mut net = IotNetwork::new(4);
        net.set_radio(RadioModel { loss: 0.0, ..RadioModel::default() });
        struct Noise;
        impl Application for Noise {
            fn on_start(&mut self, ctx: &mut Ctx<'_>) {
                ctx.send(DeviceId(0), Payload::TaskRequest { task: TaskId(0) });
                ctx.send(DeviceId(0), Payload::Raw(32));
            }
            fn as_any(&self) -> &dyn Any {
                self
            }
        }
        let coord = net.add_device(
            DeviceKind::Coordinator,
            (0.0, 0.0),
            Box::new(CoordinatorApp::new()),
        );
        net.add_device(DeviceKind::Trustor, (5.0, 0.0), Box::new(Noise));
        net.start();
        net.run_to_idle();
        let app: &CoordinatorApp = net.app_as(coord).unwrap();
        assert!(app.joined.is_empty());
        assert!(app.reports.is_empty());
    }
}
