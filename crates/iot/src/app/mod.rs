//! Device applications: the coordinator, trustor and trustee roles of the
//! experimental network.

pub mod coordinator;
pub mod trustee;
pub mod trustor;

pub use coordinator::{CoordinatorApp, ServedCoordinatorApp};
pub use trustee::{TrusteeApp, TrusteeBehavior};
pub use trustor::{RoundLog, Scoring, TrustorApp, TrustorConfig};
