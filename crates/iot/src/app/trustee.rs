//! Trustee devices: honest servers and the dishonest variants the paper's
//! testbed experiments use.
//!
//! * Fig. 8 — *dishonest on a characteristic*: performed maliciously on a
//!   characteristic in past tasks and still performs badly on any task
//!   containing it.
//! * Fig. 14 — *fragment sender*: answers with many small fragments to
//!   prolong the interaction and drain the trustor.
//! * Fig. 16 — *light opportunist*: serves only when there is light (and
//!   only after the dark period), misbehaving from time to time, while
//!   normal trustees serve the whole time with light-dependent quality.

use crate::device::DeviceId;
use crate::frame::{Frame, Payload};
use crate::network::{Application, Ctx};
use crate::time::SimTime;
use rand::Rng;
use siot_core::task::{CharacteristicId, Task, TaskId};
use std::any::Any;
use std::collections::BTreeMap;

/// Static behaviour of a trustee device.
#[derive(Debug, Clone)]
pub struct TrusteeBehavior {
    /// Base result quality in `[0, 1]`.
    pub quality: f64,
    /// Number of fragments per result (≥ 1).
    pub fragments: u16,
    /// Pacing between fragments.
    pub fragment_gap: SimTime,
    /// Processing delay before the first fragment.
    pub processing_delay: SimTime,
    /// Characteristics this trustee performs maliciously on.
    pub dishonest_chars: Vec<CharacteristicId>,
    /// Whether result quality scales with ambient light (optical sensor).
    pub light_dependent: bool,
    /// Only offers service when the light is at least this bright.
    pub serve_min_light: f64,
    /// Refuses service before this time (Fig. 16's late joiners).
    pub serve_after: SimTime,
    /// Probability of a randomly bad result (opportunistic misbehaviour).
    pub misbehave_prob: f64,
    /// Energy budget in microjoules; once the device has spent this much,
    /// it stops offering service (§4.4: *"the energy consumption of
    /// previous tasks greatly impacts the willingness of this node to
    /// undertake any more similar tasks"*). `f64::INFINITY` = mains power.
    pub energy_budget_uj: f64,
}

impl TrusteeBehavior {
    /// An honest trustee with the given quality.
    pub fn honest(quality: f64) -> Self {
        TrusteeBehavior {
            quality,
            fragments: 2,
            fragment_gap: SimTime::millis(20),
            processing_delay: SimTime::millis(50),
            dishonest_chars: Vec::new(),
            light_dependent: false,
            serve_min_light: 0.0,
            serve_after: SimTime::ZERO,
            misbehave_prob: 0.0,
            energy_budget_uj: f64::INFINITY,
        }
    }

    /// A battery-powered honest trustee that withdraws once it has spent
    /// `budget_uj` microjoules.
    pub fn battery_powered(quality: f64, budget_uj: f64) -> Self {
        TrusteeBehavior { energy_budget_uj: budget_uj, ..TrusteeBehavior::honest(quality) }
    }

    /// Fig. 14's attacker: good-looking results delivered as a long
    /// fragment stream.
    pub fn fragment_attacker(quality: f64, fragments: u16) -> Self {
        TrusteeBehavior {
            fragments,
            fragment_gap: SimTime::millis(25),
            ..TrusteeBehavior::honest(quality)
        }
    }

    /// Fig. 8's attacker: bad on specific characteristics.
    pub fn dishonest_on(chars: Vec<CharacteristicId>, quality: f64) -> Self {
        TrusteeBehavior { dishonest_chars: chars, ..TrusteeBehavior::honest(quality) }
    }

    /// Fig. 16's normal sensor node: serves always, quality follows light.
    pub fn light_dependent(quality: f64) -> Self {
        TrusteeBehavior { light_dependent: true, ..TrusteeBehavior::honest(quality) }
    }

    /// Fig. 16's opportunist: appears after `serve_after`, serves only in
    /// light, misbehaves sometimes.
    pub fn light_opportunist(quality: f64, serve_after: SimTime, misbehave_prob: f64) -> Self {
        TrusteeBehavior {
            serve_min_light: 0.6,
            serve_after,
            misbehave_prob,
            ..TrusteeBehavior::honest(quality)
        }
    }
}

/// Trustee application.
pub struct TrusteeApp {
    behavior: TrusteeBehavior,
    /// Task definitions (needed to detect dishonest characteristics).
    tasks: BTreeMap<TaskId, Task>,
    /// In-flight results: task -> (quality, next fragment index).
    pending: BTreeMap<(DeviceId, TaskId), (f64, u16)>,
    /// Count of delegations served.
    pub served: usize,
    /// Count of requests declined (not serving).
    pub declined: usize,
}

/// Timer key space: (task, requester, fragment) packed into u64.
fn timer_key(task: TaskId, requester: DeviceId) -> u64 {
    ((task.0 as u64) << 32) | requester.0 as u64
}

fn unpack_key(key: u64) -> (TaskId, DeviceId) {
    (TaskId((key >> 32) as u32), DeviceId(key as u32))
}

impl TrusteeApp {
    /// Creates a trustee with `behavior`, knowing the given task types.
    pub fn new(behavior: TrusteeBehavior, tasks: impl IntoIterator<Item = Task>) -> Self {
        TrusteeApp {
            behavior,
            tasks: tasks.into_iter().map(|t| (t.id(), t)).collect(),
            pending: BTreeMap::new(),
            served: 0,
            declined: 0,
        }
    }

    fn serving(&self, ctx: &Ctx<'_>) -> bool {
        ctx.now >= self.behavior.serve_after
            && ctx.light() >= self.behavior.serve_min_light
            && ctx.device(ctx.self_id).stats.energy_uj < self.behavior.energy_budget_uj
    }

    /// The actual quality this trustee produces right now for `task`.
    fn result_quality(&self, ctx: &mut Ctx<'_>, task: TaskId) -> f64 {
        let mut q = self.behavior.quality;
        if let Some(def) = self.tasks.get(&task) {
            let dishonest =
                self.behavior.dishonest_chars.iter().any(|&c| def.has_characteristic(c));
            if dishonest {
                q = 0.1;
            }
        }
        if self.behavior.light_dependent {
            q *= ctx.light();
        }
        if self.behavior.misbehave_prob > 0.0 && ctx.rng().gen_bool(self.behavior.misbehave_prob) {
            q = 0.1;
        }
        q.clamp(0.0, 1.0)
    }
}

impl Application for TrusteeApp {
    fn on_start(&mut self, ctx: &mut Ctx<'_>) {
        // join the coordinator's network
        ctx.send(DeviceId(0), Payload::AssocRequest);
    }

    fn on_frame(&mut self, ctx: &mut Ctx<'_>, frame: &Frame) {
        match frame.payload {
            Payload::TaskRequest { task } => {
                if self.serving(ctx) {
                    ctx.send(
                        frame.src,
                        Payload::Offer { task, advertised_gain: self.behavior.quality },
                    );
                } else {
                    self.declined += 1;
                }
            }
            Payload::Delegate { task } => {
                if !self.serving(ctx) {
                    self.declined += 1;
                    return;
                }
                self.served += 1;
                let quality = self.result_quality(ctx, task);
                self.pending.insert((frame.src, task), (quality, 0));
                ctx.set_timer(self.behavior.processing_delay, timer_key(task, frame.src));
            }
            _ => {}
        }
    }

    fn on_timer(&mut self, ctx: &mut Ctx<'_>, key: u64) {
        let (task, requester) = unpack_key(key);
        let Some(&(quality, index)) = self.pending.get(&(requester, task)) else {
            return;
        };
        let total = self.behavior.fragments.max(1);
        ctx.send(requester, Payload::ResultFragment { task, index, total, quality });
        if index + 1 < total {
            self.pending.insert((requester, task), (quality, index + 1));
            ctx.set_timer(self.behavior.fragment_gap, key);
        } else {
            self.pending.remove(&(requester, task));
        }
    }

    fn as_any(&self) -> &dyn Any {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn behavior_constructors() {
        let h = TrusteeBehavior::honest(0.8);
        assert_eq!(h.fragments, 2);
        assert!(h.dishonest_chars.is_empty());

        let f = TrusteeBehavior::fragment_attacker(0.95, 25);
        assert_eq!(f.fragments, 25);

        let d = TrusteeBehavior::dishonest_on(vec![CharacteristicId(1)], 0.8);
        assert_eq!(d.dishonest_chars, vec![CharacteristicId(1)]);

        let l = TrusteeBehavior::light_dependent(0.8);
        assert!(l.light_dependent);

        let o = TrusteeBehavior::light_opportunist(0.85, SimTime::secs(100), 0.3);
        assert_eq!(o.serve_after, SimTime::secs(100));
        assert_eq!(o.serve_min_light, 0.6);
    }

    #[test]
    fn battery_constructor() {
        let b = TrusteeBehavior::battery_powered(0.8, 5_000.0);
        assert_eq!(b.energy_budget_uj, 5_000.0);
        assert!(TrusteeBehavior::honest(0.8).energy_budget_uj.is_infinite());
    }

    #[test]
    fn timer_key_roundtrip() {
        let k = timer_key(TaskId(7), DeviceId(11));
        assert_eq!(unpack_key(k), (TaskId(7), DeviceId(11)));
        let k = timer_key(TaskId(u32::MAX), DeviceId(0));
        assert_eq!(unpack_key(k), (TaskId(u32::MAX), DeviceId(0)));
    }
}
