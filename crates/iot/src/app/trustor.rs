//! The trustor application: runs the delegation protocol round by round.
//!
//! Each round: broadcast a `TaskRequest` to the group's trustees, collect
//! `Offer`s for a window, score the offerers with the configured trust
//! model, `Delegate` to the best, reassemble the `ResultFragment`s, then
//! post-evaluate (Eqs. 18–22, optionally environment-aware per Eqs. 25–28)
//! and report to the coordinator.

use crate::device::DeviceId;
use crate::frame::{Frame, Payload};
use crate::network::{Application, Ctx};
use crate::stack::aps::Reassembly;
use crate::time::SimTime;
use rand::Rng;
use siot_core::context::Context;
use siot_core::delegation::DelegationOutcome;
use siot_core::environment::EnvIndicator;
use siot_core::goal::Goal;
use siot_core::record::{ForgettingFactors, Observation, TrustRecord};
use siot_core::store::TrustEngine;
use siot_core::task::Task;
use siot_core::tw::Normalizer;
use std::any::Any;

/// How candidates are scored (§5.6's strategies).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scoring {
    /// Eq. 18 trustworthiness of the record.
    TrustTw,
    /// Gain-only (`Ŝ·Ĝ`) — the Fig. 14 baseline blind to cost.
    GainOnly,
    /// Expected net profit (Eq. 23) — the proposed rule.
    NetProfit,
}

/// Trustor configuration.
#[derive(Debug, Clone)]
pub struct TrustorConfig {
    /// Trustees this trustor may query (its group).
    pub trustees: Vec<DeviceId>,
    /// Where to send end-of-round reports.
    pub coordinator: DeviceId,
    /// One task per round (the round count is `tasks.len()`).
    pub tasks: Vec<Task>,
    /// Task definitions known from past experience (for inference).
    pub known_tasks: Vec<Task>,
    /// Seeded records from previous interactions: `(peer, task id, record)`.
    pub seed_records: Vec<(DeviceId, siot_core::task::TaskId, TrustRecord)>,
    /// Whether unexperienced tasks are scored by Eq. 4 inference.
    pub use_inference: bool,
    /// The goal delegations are judged against (the §3.2 goal ingredient;
    /// receipts report whether the realized result fulfilled it).
    pub goal: Goal,
    /// Candidate scoring rule.
    pub scoring: Scoring,
    /// Whether post-evaluation removes the environment (Eqs. 25–28).
    pub env_aware: bool,
    /// Forgetting factors (paper: β = 0.1).
    pub betas: ForgettingFactors,
    /// How long offers are collected.
    pub offer_window: SimTime,
    /// How long to wait for the full result after delegating.
    pub result_timeout: SimTime,
    /// Cadence of rounds.
    pub round_interval: SimTime,
    /// Interaction time that normalizes to cost 1.0, in µs.
    pub cost_norm_us: f64,
}

impl TrustorConfig {
    /// Sensible defaults; callers fill in the task schedule and trustees.
    pub fn new(trustees: Vec<DeviceId>, coordinator: DeviceId) -> Self {
        TrustorConfig {
            trustees,
            coordinator,
            tasks: Vec::new(),
            known_tasks: Vec::new(),
            seed_records: Vec::new(),
            use_inference: true,
            goal: Goal::ANY,
            scoring: Scoring::NetProfit,
            env_aware: false,
            betas: ForgettingFactors::figures(),
            offer_window: SimTime::millis(200),
            result_timeout: SimTime::secs(3),
            round_interval: SimTime::secs(5),
            cost_norm_us: 1_000_000.0,
        }
    }
}

/// Everything measured in one round.
#[derive(Debug, Clone, PartialEq)]
pub struct RoundLog {
    /// Round index.
    pub round: usize,
    /// The trustee chosen, if any offer arrived.
    pub selected: Option<DeviceId>,
    /// Result quality, if the result completed before the timeout.
    pub quality: Option<f64>,
    /// Time from delegation to complete result (or timeout).
    pub interaction: SimTime,
    /// Realized profit `quality − cost` (0 when unavailable).
    pub profit: f64,
}

const PHASE_START: u64 = 0;
const PHASE_SELECT: u64 = 1;
const PHASE_TIMEOUT: u64 = 2;

/// Trustor application state.
pub struct TrustorApp {
    cfg: TrustorConfig,
    /// The trust engine (public so experiments can inspect it).
    pub engine: TrustEngine<DeviceId>,
    reassembly: Reassembly,
    round: usize,
    offers: Vec<DeviceId>,
    delegated_to: Option<DeviceId>,
    delegate_sent: SimTime,
    round_done: bool,
    /// Per-round measurements.
    pub logs: Vec<RoundLog>,
}

impl TrustorApp {
    /// Creates a trustor; the round schedule is `cfg.tasks`.
    pub fn new(cfg: TrustorConfig) -> Self {
        let mut engine = TrustEngine::new();
        for t in cfg.tasks.iter().chain(cfg.known_tasks.iter()) {
            engine.register_task(t.clone());
        }
        for (peer, tid, rec) in &cfg.seed_records {
            engine.seed_record(*peer, *tid, *rec);
        }
        TrustorApp {
            cfg,
            engine,
            reassembly: Reassembly::new(),
            round: 0,
            offers: Vec::new(),
            delegated_to: None,
            delegate_sent: SimTime::ZERO,
            round_done: false,
            logs: Vec::new(),
        }
    }

    fn score(&self, peer: DeviceId, task: &Task, ctx: &mut Ctx<'_>) -> f64 {
        if let Some(rec) = self.engine.record(peer, task.id()) {
            return match self.cfg.scoring {
                Scoring::TrustTw => rec.trustworthiness(Normalizer::UNIT).value(),
                Scoring::GainOnly => rec.s_hat * rec.g_hat,
                Scoring::NetProfit => Normalizer::UNIT.apply(rec.expected_net_profit()),
            };
        }
        if self.cfg.use_inference {
            if let Ok(tw) = self.engine.infer(peer, task) {
                return tw;
            }
        }
        // Unknown candidate: optimistic prior (the paper initializes
        // expectations at their maximum, §5.7), so every offerer gets tried
        // before the trustor settles — with noise for random tie-breaking.
        0.85 + ctx.rng().gen_range(-0.05..0.05)
    }

    fn finish_round(&mut self, ctx: &mut Ctx<'_>, quality: Option<f64>) {
        if self.round_done {
            return;
        }
        self.round_done = true;
        let task = &self.cfg.tasks[self.round];
        let interaction =
            if self.delegated_to.is_some() { ctx.now - self.delegate_sent } else { SimTime::ZERO };
        let cost = (interaction.as_micros() as f64 / self.cfg.cost_norm_us).clamp(0.0, 1.0);
        // Post-evaluation goes through a one-shot delegation session: the
        // context carries the ambient-light environment indicator when the
        // trustor is environment-aware (Eqs. 25–28 removal at the feedback
        // boundary), and a timed-out delegation counts as an abusive use of
        // the trustor's round in the usage log.
        let feed_back = |engine: &mut TrustEngine<DeviceId>,
                         peer: DeviceId,
                         outcome: DelegationOutcome,
                         env: EnvIndicator,
                         goal: Goal,
                         betas: &ForgettingFactors| {
            engine
                .delegate(peer, task, goal, Context::new(task.id(), env))
                .activate(engine)
                .execute(engine, outcome, betas)
                .expect("qualities and costs are clamped");
        };
        let (profit, selected) = match (self.delegated_to, quality) {
            (Some(peer), Some(q)) => {
                let obs = Observation { success_rate: q, gain: q, damage: 1.0 - q, cost };
                let env = if self.cfg.env_aware {
                    EnvIndicator::saturating(ctx.light())
                } else {
                    EnvIndicator::AMICABLE
                };
                feed_back(
                    &mut self.engine,
                    peer,
                    DelegationOutcome::observed(obs),
                    env,
                    self.cfg.goal,
                    &self.cfg.betas,
                );
                (q - cost, Some(peer))
            }
            (Some(peer), None) => {
                // delegated but the result never completed: the trustee
                // wasted the round — an abusive use of the relationship
                let obs = Observation { success_rate: 0.0, gain: 0.0, damage: 0.5, cost };
                feed_back(
                    &mut self.engine,
                    peer,
                    DelegationOutcome::observed(obs).abusive(),
                    EnvIndicator::AMICABLE,
                    self.cfg.goal,
                    &self.cfg.betas,
                );
                (-cost, Some(peer))
            }
            _ => (0.0, None),
        };
        self.logs.push(RoundLog { round: self.round, selected, quality, interaction, profit });
        if let Some(peer) = selected {
            ctx.send(self.cfg.coordinator, Payload::Report { selected: peer, net_profit: profit });
        }
    }
}

impl Application for TrustorApp {
    fn on_start(&mut self, ctx: &mut Ctx<'_>) {
        ctx.send(DeviceId(0), Payload::AssocRequest);
        // schedule every round upfront: deterministic cadence that the
        // light schedule can align with; small per-device stagger avoids
        // synchronized floods
        let stagger = SimTime::millis(100 + 37 * ctx.self_id.0 as u64);
        for round in 0..self.cfg.tasks.len() {
            let at = SimTime::micros(round as u64 * self.cfg.round_interval.as_micros()) + stagger;
            ctx.set_timer(at, (round as u64) << 2 | PHASE_START);
        }
    }

    fn on_frame(&mut self, ctx: &mut Ctx<'_>, frame: &Frame) {
        match frame.payload {
            Payload::Offer { task, .. }
                if !self.round_done
                    && self.delegated_to.is_none()
                    && self.round < self.cfg.tasks.len()
                    && task == self.cfg.tasks[self.round].id()
                    && !self.offers.contains(&frame.src) =>
            {
                self.offers.push(frame.src);
            }
            Payload::ResultFragment { task, index, total, quality }
                if self.delegated_to == Some(frame.src) && !self.round_done =>
            {
                if let Some(q) = self.reassembly.accept(frame.src.0, task, index, total, quality) {
                    self.finish_round(ctx, Some(q));
                }
            }
            _ => {}
        }
    }

    fn on_timer(&mut self, ctx: &mut Ctx<'_>, key: u64) {
        let round = (key >> 2) as usize;
        match key & 3 {
            PHASE_START => {
                // close out a round that never finished (e.g. no offers and
                // no timeout yet)
                if round > 0 && !self.round_done && self.logs.len() < round {
                    self.finish_round(ctx, None);
                }
                self.round = round;
                self.round_done = false;
                self.offers.clear();
                self.delegated_to = None;
                let task = self.cfg.tasks[round].id();
                for &t in &self.cfg.trustees.clone() {
                    ctx.send(t, Payload::TaskRequest { task });
                }
                ctx.set_timer(self.cfg.offer_window, (round as u64) << 2 | PHASE_SELECT);
            }
            PHASE_SELECT => {
                if self.round != round || self.round_done {
                    return;
                }
                if self.offers.is_empty() {
                    self.finish_round(ctx, None);
                    return;
                }
                let task = self.cfg.tasks[round].clone();
                let mut best = self.offers[0];
                let mut best_score = f64::NEG_INFINITY;
                for &peer in &self.offers.clone() {
                    let s = self.score(peer, &task, ctx);
                    if s > best_score {
                        best_score = s;
                        best = peer;
                    }
                }
                self.delegated_to = Some(best);
                self.delegate_sent = ctx.now;
                ctx.send(best, Payload::Delegate { task: task.id() });
                ctx.set_timer(self.cfg.result_timeout, (round as u64) << 2 | PHASE_TIMEOUT);
            }
            PHASE_TIMEOUT => {
                if self.round == round && !self.round_done {
                    if let Some(peer) = self.delegated_to {
                        self.reassembly.reset(peer.0, self.cfg.tasks[round].id());
                    }
                    self.finish_round(ctx, None);
                }
            }
            _ => unreachable!("two-bit phase"),
        }
    }

    fn as_any(&self) -> &dyn Any {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use siot_core::task::{CharacteristicId, TaskId};

    fn task(id: u32) -> Task {
        Task::uniform(TaskId(id), [CharacteristicId(0)]).unwrap()
    }

    #[test]
    fn config_defaults() {
        let cfg = TrustorConfig::new(vec![DeviceId(1)], DeviceId(0));
        assert!(cfg.use_inference);
        assert_eq!(cfg.scoring, Scoring::NetProfit);
        assert!(!cfg.env_aware);
    }

    #[test]
    fn app_registers_tasks_and_seeds() {
        let mut cfg = TrustorConfig::new(vec![DeviceId(1)], DeviceId(0));
        cfg.tasks = vec![task(0)];
        cfg.known_tasks = vec![task(1)];
        cfg.seed_records.push((
            DeviceId(1),
            TaskId(1),
            TrustRecord::with_priors(0.9, 0.9, 0.1, 0.1),
        ));
        let app = TrustorApp::new(cfg);
        assert!(app.engine.task(TaskId(0)).is_some());
        assert!(app.engine.task(TaskId(1)).is_some());
        assert!(app.engine.record(DeviceId(1), TaskId(1)).is_some());
        assert!(app.logs.is_empty());
    }
}
