//! The discrete-event queue.

use crate::device::DeviceId;
use crate::frame::Frame;
use crate::time::SimTime;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// Events processed by the simulator.
#[derive(Debug, Clone, PartialEq)]
pub enum Event {
    /// A transmission attempt completes and the frame may arrive.
    Deliver {
        /// The frame in flight.
        frame: Frame,
        /// Which MAC attempt this is (0-based).
        attempt: u8,
    },
    /// An application timer fires.
    Timer {
        /// The device whose timer fires.
        device: DeviceId,
        /// Application-chosen key.
        key: u64,
    },
}

#[derive(Debug)]
struct Scheduled {
    at: SimTime,
    seq: u64,
    event: Event,
}

impl PartialEq for Scheduled {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl Eq for Scheduled {}
impl PartialOrd for Scheduled {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Scheduled {
    fn cmp(&self, other: &Self) -> Ordering {
        // reversed: BinaryHeap is a max-heap, we need earliest-first;
        // ties break by insertion sequence for determinism
        other.at.cmp(&self.at).then(other.seq.cmp(&self.seq))
    }
}

/// Deterministic earliest-first event queue.
#[derive(Debug, Default)]
pub struct EventQueue {
    heap: BinaryHeap<Scheduled>,
    seq: u64,
}

impl EventQueue {
    /// An empty queue.
    pub fn new() -> Self {
        Self::default()
    }

    /// Schedules `event` at absolute time `at`.
    pub fn schedule(&mut self, at: SimTime, event: Event) {
        self.heap.push(Scheduled { at, seq: self.seq, event });
        self.seq += 1;
    }

    /// Pops the earliest event.
    pub fn pop(&mut self) -> Option<(SimTime, Event)> {
        self.heap.pop().map(|s| (s.at, s.event))
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn earliest_first() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::millis(5), Event::Timer { device: DeviceId(0), key: 5 });
        q.schedule(SimTime::millis(1), Event::Timer { device: DeviceId(0), key: 1 });
        q.schedule(SimTime::millis(3), Event::Timer { device: DeviceId(0), key: 3 });
        let order: Vec<u64> = std::iter::from_fn(|| q.pop())
            .map(|(_, e)| match e {
                Event::Timer { key, .. } => key,
                _ => unreachable!(),
            })
            .collect();
        assert_eq!(order, vec![1, 3, 5]);
    }

    #[test]
    fn fifo_for_simultaneous_events() {
        let mut q = EventQueue::new();
        for key in 0..5 {
            q.schedule(SimTime::millis(1), Event::Timer { device: DeviceId(0), key });
        }
        let order: Vec<u64> = std::iter::from_fn(|| q.pop())
            .map(|(_, e)| match e {
                Event::Timer { key, .. } => key,
                _ => unreachable!(),
            })
            .collect();
        assert_eq!(order, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn len_and_empty() {
        let mut q = EventQueue::new();
        assert!(q.is_empty());
        q.schedule(SimTime::ZERO, Event::Timer { device: DeviceId(0), key: 0 });
        assert_eq!(q.len(), 1);
        q.pop();
        assert!(q.is_empty());
    }
}
