//! # siot-iot — a discrete-event IoT testbed
//!
//! Software substitute for the paper's experimental ZigBee network (§5.2):
//! CC2530 node devices running TI Z-Stack, organized in five groups of two
//! trustors, two honest trustees and two dishonest trustees, plus a
//! coordinator that forms the network and collects result reports.
//!
//! The simulator is event-driven with a microsecond virtual clock. Frames
//! have real airtime (250 kbit/s radio), unicasts are retried with backoff
//! on loss, large payloads fragment at the APS layer, and every device
//! accounts its active (radio-on) time and energy — which is exactly what
//! the paper's Fig. 14 measures when fragment-flooding trustees inflate
//! interaction costs.
//!
//! | Figure | Experiment |
//! |---|---|
//! | Fig. 8 (inferential transfer) | [`experiment::inference`] |
//! | Fig. 14 (fragment attack vs cost factor) | [`experiment::fragments`] |
//! | Fig. 16 (optical sensors, light schedule) | [`experiment::light`] |

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod app;
pub mod device;
pub mod energy;
pub mod event;
pub mod experiment;
pub mod frame;
pub mod network;
pub mod radio;
pub mod stack;
pub mod time;

pub use device::{DeviceId, DeviceKind};
pub use frame::{Frame, Payload};
pub use network::{Application, Ctx, IotNetwork};
pub use time::SimTime;
