//! Radio channel model: airtime, range, loss.
//!
//! 250 kbit/s IEEE 802.15.4 radio: 32 µs per byte, 160 µs preamble+SFD.
//! Delivery succeeds within range with probability `1 − loss`; the MAC
//! retries lost unicasts (see [`crate::stack::mac`]).

use crate::frame::Frame;
use crate::time::SimTime;

/// Channel parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RadioModel {
    /// Reliable transmission range in meters (the paper's devices: 250 m).
    pub range_m: f64,
    /// Per-attempt loss probability inside the range.
    pub loss: f64,
    /// Microseconds per payload byte (250 kbit/s → 32 µs).
    pub us_per_byte: u64,
    /// Fixed per-frame preamble time in µs.
    pub preamble_us: u64,
}

impl Default for RadioModel {
    fn default() -> Self {
        RadioModel { range_m: 250.0, loss: 0.05, us_per_byte: 32, preamble_us: 160 }
    }
}

impl RadioModel {
    /// Time on air for one frame.
    pub fn airtime(&self, frame: &Frame) -> SimTime {
        SimTime::micros(self.preamble_us + frame.wire_bytes() as u64 * self.us_per_byte)
    }

    /// Whether two positions are within radio range.
    pub fn in_range(&self, a: (f64, f64), b: (f64, f64)) -> bool {
        let dx = a.0 - b.0;
        let dy = a.1 - b.1;
        (dx * dx + dy * dy).sqrt() <= self.range_m
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::device::DeviceId;
    use crate::frame::Payload;

    #[test]
    fn airtime_scales_with_size() {
        let radio = RadioModel::default();
        let small = Frame { src: DeviceId(0), dst: DeviceId(1), payload: Payload::Raw(10), seq: 0 };
        let large = Frame { src: DeviceId(0), dst: DeviceId(1), payload: Payload::Raw(90), seq: 1 };
        assert!(radio.airtime(&large) > radio.airtime(&small));
        // 10+17 bytes at 32 µs + 160 µs preamble
        assert_eq!(radio.airtime(&small), SimTime::micros(160 + 27 * 32));
    }

    #[test]
    fn range_check() {
        let radio = RadioModel::default();
        assert!(radio.in_range((0.0, 0.0), (100.0, 0.0)));
        assert!(!radio.in_range((0.0, 0.0), (300.0, 0.0)));
    }
}
