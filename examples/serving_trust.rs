//! Serving trust: one durable engine shared by many concurrent
//! requesters through the async `TrustService` facade.
//!
//! The paper frames trust as a process run *by* an agent; SIoT
//! deployments also need that process run *for* a fleet — a shared
//! service many autonomous objects evaluate against and report into
//! concurrently. This example walks the full service lifecycle:
//!
//! 1. open a **durable** engine (append-only log + snapshot recovery);
//! 2. spawn a [`TrustService`]: the actor thread takes ownership, handles
//!    are `Clone + Send`, methods are `async fn`s — no runtime, the
//!    bundled `block_on` drives them;
//! 3. requester threads race delegation sessions through their handles —
//!    evaluate in the actor, finish locally, commit the completion back;
//!    adjacent commits fold in one batched storage pass per mailbox drain;
//! 4. graceful shutdown drains the mailbox and flushes the journal, so no
//!    acked commit is lost;
//! 5. "restart": reopen the directory and serve again from remembered
//!    trust.
//!
//! Run with: `cargo run --example serving_trust`

use siot::core::prelude::*;
use siot::core::service::{block_on, ServiceOptions, TrustService};

/// Hidden ground truth for the demo's trustees.
const COMPETENCE: [f64; 4] = [0.95, 0.75, 0.5, 0.25];

fn spawn_service(dir: &std::path::Path, task: &Task) -> TrustService<u32, LogBackend<u32>> {
    let mut engine: DurableTrustStore<u32> = TrustEngine::open(dir).expect("durable store opens");
    // task definitions are configuration, re-registered after opening
    engine.register_task(task.clone());
    TrustService::spawn(engine, ServiceOptions::default())
}

fn main() {
    let task = Task::uniform(TaskId(0), [CharacteristicId(0)]).expect("non-empty task");
    let goal = Goal { min_success: 0.0, min_gain: 0.0, max_damage: 0.8, max_cost: 0.5 };
    let dir = std::env::temp_dir().join(format!("siot-serving-trust-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);

    // ---- first life of the service -------------------------------------
    let service = spawn_service(&dir, &task);
    println!("service up; {} requester threads sharing it", 3);
    std::thread::scope(|scope| {
        for requester in 0..3usize {
            let handle = service.handle();
            let task = task.clone();
            scope.spawn(move || {
                block_on(async {
                    // a deterministic per-requester walk over the trustees
                    for round in 0..8usize {
                        let trustee = ((requester + round) % COMPETENCE.len()) as u32;
                        let request = DelegationRequest::new(
                            trustee,
                            &task,
                            goal,
                            Context::amicable(task.id()),
                        )
                        .with_prior(TrustRecord::with_priors(1.0, 1.0, 0.0, 0.0));
                        let decision = handle.delegate(request).await.expect("service alive");
                        let Decision::Delegate(active) = decision else {
                            continue; // the goal gate refused: no feedback
                        };
                        // "execute" against the hidden competence
                        let q = COMPETENCE[trustee as usize];
                        let outcome = if (requester + round) % 4 != 3 {
                            DelegationOutcome::succeeded(q, 0.1)
                        } else {
                            DelegationOutcome::failed(1.0 - q, 0.1)
                        };
                        let completed = active.finish(outcome).expect("outcome is unit-range");
                        let receipt = handle.commit(completed).await.expect("service alive");
                        println!(
                            "  requester {requester} round {round}: trustee {trustee} {}",
                            if receipt.fulfilled { "fulfilled" } else { "fell short" }
                        );
                    }
                })
            });
        }
    });

    // graceful shutdown: mailbox drained, journal flushed, engine returned
    let engine = service.shutdown().expect("drains and flushes");
    println!(
        "\nshut down with {} trustees on record; state is on disk",
        engine.known_peers().len()
    );
    drop(engine);

    // ---- second life: reopen and serve from remembered trust -----------
    let service = spawn_service(&dir, &task);
    let handle = service.handle();
    println!("\nafter the restart, the service still knows its fleet:");
    block_on(async {
        for trustee in handle.known_peers().await.expect("service alive") {
            let tw = handle
                .trustworthiness(trustee, task.id())
                .await
                .expect("service alive")
                .expect("known trustee");
            let interactions = handle
                .record(trustee, task.id())
                .await
                .expect("service alive")
                .expect("known trustee")
                .interactions;
            println!(
                "  trustee {trustee}: {tw} after {interactions} interactions (actual {:.2})",
                COMPETENCE[trustee as usize]
            );
        }
    });
    service.shutdown().expect("drains and flushes");
    let _ = std::fs::remove_dir_all(&dir);
}
