//! Fragment-attack detection via the cost factor (§5.6 / Fig. 14) on the
//! simulated ZigBee testbed.
//!
//! Dishonest trustees deliver good-looking results as a long stream of
//! fragment packages, draining the trustor's battery. The four-factor
//! trust model (Eq. 23) notices the cost; a gain-only model does not.
//!
//! Run with: `cargo run --example energy_aware`

use siot::iot::experiment::fragments::{run, FragmentsConfig};

fn main() {
    let cfg = FragmentsConfig { rounds: 30, attack_fragments: 24, seed: 7 };
    let out = run(&cfg);

    println!("avg trustor active time per task (ms):\n");
    println!("round  with cost factor  gain-only");
    for i in 0..out.with_model.len() {
        let bar = |v: f64| "#".repeat((v / 25.0) as usize);
        println!(
            "{:>5}  {:>7.0} {:<28}  {:>7.0} {}",
            i + 1,
            out.with_model[i],
            bar(out.with_model[i]),
            out.without_model[i],
            bar(out.without_model[i]),
        );
    }
    let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64;
    let late = out.with_model.len() / 2..;
    println!(
        "\nlate-run averages: with cost factor {:.0} ms, gain-only {:.0} ms",
        mean(&out.with_model[late.clone()]),
        mean(&out.without_model[late]),
    );
    println!("the proposed model detected the fragment senders and stopped choosing them.");
}
