//! Quickstart: the six ingredients of trust in one small social IoT.
//!
//! Builds a synthetic social network, assigns trustor/trustee roles, and
//! runs a few delegation rounds with the full trust process: evaluation
//! (Eq. 18), decision (Eq. 23), action, result, and post-evaluation
//! updates (Eqs. 19–22).
//!
//! Run with: `cargo run --example quickstart`

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use siot::core::prelude::*;
use siot::graph::generate::watts_strogatz;
use siot::sim::Roles;

fn main() {
    // 1. a small-world social network of 40 objects
    let g = watts_strogatz(40, 6, 0.2, 7).expect("valid generator parameters");
    let roles = Roles::assign(&g, 0.3, 0.4, 7);
    println!(
        "network: {} nodes, {} edges; {} trustors, {} trustees",
        g.node_count(),
        g.edge_count(),
        roles.trustors().len(),
        roles.trustees().len()
    );

    // 2. one trustor's view of the world
    let trustor = roles.trustors()[0];
    let mut store: TrustStore<siot::sim::AgentId> = TrustStore::new();
    let task = Task::uniform(TaskId(0), [CharacteristicId(0), CharacteristicId(1)])
        .expect("non-empty task");
    store.register_task(task.clone());

    // hidden ground truth: how good each trustee actually is
    let mut rng = SmallRng::seed_from_u64(42);
    let competence: Vec<f64> = (0..g.node_count()).map(|_| rng.gen_range(0.2..1.0)).collect();

    let betas = ForgettingFactors::figures();
    println!("\nround  chosen  expected-profit  outcome");
    for round in 0..12 {
        // 3. pre-evaluation + decision: Eq. 23 over the neighbours
        let candidates: Vec<_> =
            g.neighbors(trustor).iter().copied().filter(|&n| roles.is_trustee(n)).collect();
        let best = candidates
            .iter()
            .copied()
            .max_by(|&a, &b| {
                let score = |p| {
                    store.record(p, task.id()).map(|r| net_profit(&r)).unwrap_or(0.8)
                    // optimistic for strangers
                };
                score(a).partial_cmp(&score(b)).expect("scores are finite")
            })
            .expect("trustor has trustee neighbours");

        // 4. action + result
        let succeeded = rng.gen_bool(competence[best.index()]);
        let obs = if succeeded {
            Observation::success(0.9, 0.15)
        } else {
            Observation::failure(0.7, 0.15)
        };

        // 5. post-evaluation (Eqs. 19–22)
        store.observe(best, task.id(), &obs, &betas);
        let rec = store.record(best, task.id()).expect("just observed");
        println!(
            "{round:>5}  {best:>6}  {profit:>15.3}  {outcome}",
            profit = rec.expected_net_profit(),
            outcome = if succeeded { "success" } else { "failure" },
        );
    }

    // 6. the trust that came out of the process
    println!("\nfinal trustworthiness toward interacted trustees:");
    for peer in store.known_peers() {
        let tw = store.trustworthiness(peer, task.id()).expect("known peer");
        println!("  {peer}: {tw}  (actual competence {:.2})", competence[peer.index()]);
    }
}
