//! Quickstart: the six ingredients of trust in one small social IoT.
//!
//! Builds a synthetic social network, assigns trustor/trustee roles, and
//! runs delegation rounds through the typed-state session lifecycle:
//! `delegate` (trustor, trustee, goal, context) → `evaluate` (Eq. 18) →
//! `Decision` (Eq. 23 / §3.4) → `execute` (action, result, and the
//! post-evaluation updates of Eqs. 19–22, folded exactly once) — then
//! finishes with a **durable** engine that survives a restart, with the
//! engine **served** — moved onto a `TrustService` actor thread whose
//! cloneable async handles let concurrent requesters share it — with
//! the service **sharded**: partitioned shard actors behind one routing
//! handle — with the service **federated**: exposed over TCP to a
//! remote handle that mirrors the whole API from another process — and
//! with the federation **fault-tolerant**: a fleet handle routing
//! across several TCP nodes, surviving a node kill with typed errors,
//! reconnects, and idempotent commits — and with reads **replicated**:
//! epoch-stamped snapshots published by every shard serve
//! `Freshness::Snapshot` queries with zero mailbox traffic and bounded
//! staleness, locally and over the wire.
//!
//! Run with: `cargo run --example quickstart`

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use siot::core::log_backend::{FsyncPolicy, LogOptions};
use siot::core::prelude::*;
use siot::core::service::block_on;
use siot::graph::generate::watts_strogatz;
use siot::sim::Roles;

fn main() {
    // 1. a small-world social network of 40 objects
    let g = watts_strogatz(40, 6, 0.2, 7).expect("valid generator parameters");
    let roles = Roles::assign(&g, 0.3, 0.4, 7);
    println!(
        "network: {} nodes, {} edges; {} trustors, {} trustees",
        g.node_count(),
        g.edge_count(),
        roles.trustors().len(),
        roles.trustees().len()
    );

    // 2. one trustor's engine, goal and task — three of the six
    //    ingredients (the best-connected trustor, so there are several
    //    candidate trustees to explore)
    let trustor = roles
        .trustors()
        .iter()
        .copied()
        .max_by_key(|&t| g.neighbors(t).iter().filter(|&&n| roles.is_trustee(n)).count())
        .expect("some trustor exists");
    let mut engine: TrustStore<siot::sim::AgentId> = TrustStore::new();
    let task = Task::uniform(TaskId(0), [CharacteristicId(0), CharacteristicId(1)])
        .expect("non-empty task");
    engine.register_task(task.clone());
    let goal = Goal { min_success: 0.0, min_gain: 0.0, max_damage: 0.8, max_cost: 0.5 };
    // strangers are explored under the paper's optimistic prior (§5.7)
    let optimistic = TrustRecord::with_priors(1.0, 1.0, 0.0, 0.0);

    // hidden ground truth: how good each trustee actually is
    let mut rng = SmallRng::seed_from_u64(42);
    let competence: Vec<f64> = (0..g.node_count()).map(|_| rng.gen_range(0.2..1.0)).collect();

    let betas = ForgettingFactors::figures();
    println!("\nround  chosen  tw      decision   outcome");
    for round in 0..12 {
        // 3. pre-evaluation across the neighbours: the best candidate by
        //    expected net profit (Eq. 23), scored from engine records
        let candidates: Vec<_> =
            g.neighbors(trustor).iter().copied().filter(|&n| roles.is_trustee(n)).collect();
        let best = candidates
            .iter()
            .copied()
            .max_by(|&a, &b| {
                let score = |p| engine.record(p, task.id()).map_or(0.99, |r| net_profit(&r));
                score(a).partial_cmp(&score(b)).expect("scores are finite")
            })
            .expect("trustor has trustee neighbours");

        // 4. the session: evaluate the chosen trustee against the goal
        let session = engine
            .delegate(best, &task, goal, Context::amicable(task.id()))
            .with_prior(optimistic)
            .evaluate(&engine);
        let tw = session.trustworthiness();
        match session.into_decision() {
            Decision::Decline { reason, .. } => {
                // the goal gate refused — no action, no feedback
                println!("{round:>5}  {best:>6}  {tw}  decline    ({reason:?})");
            }
            Decision::Delegate(active) => {
                // 5. action + result + post-evaluation, folded exactly once
                let succeeded = rng.gen_bool(competence[best.index()]);
                let outcome = if succeeded {
                    DelegationOutcome::succeeded(0.9, 0.15)
                } else {
                    DelegationOutcome::failed(0.7, 0.15)
                };
                let receipt =
                    active.execute(&mut engine, outcome, &betas).expect("outcome is unit-range");
                println!(
                    "{round:>5}  {best:>6}  {tw}  delegate   {}",
                    if receipt.fulfilled { "fulfilled" } else { "fell short" },
                );
            }
        }
    }

    // 6. the trust that came out of the process — including the §4.1
    //    usage logs the sessions maintained along the way
    println!("\nfinal trustworthiness toward interacted trustees:");
    for peer in engine.known_peers() {
        let tw = engine.trustworthiness(peer, task.id()).expect("known peer");
        println!(
            "  {peer}: {tw} after {} interactions  (actual competence {:.2})",
            engine.usage_log(peer).total(),
            competence[peer.index()]
        );
    }

    // 7. durability: the same process over a restart-surviving engine.
    //    `TrustEngine::open` is open-or-create — it replays the manifest's
    //    segment chain (truncating a torn tail frame on the active
    //    segment); the fsync policy (Never / OnFlush / Always, where
    //    Always group-commits: one fsync per batch, issued before the
    //    receipts come back), the compaction cadence and the segment
    //    rotation size are the `LogOptions` knobs.
    // pid-unique scratch dir so concurrent runs never clobber each other
    let dir = std::env::temp_dir().join(format!("siot-quickstart-trust-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    {
        let mut durable: DurableTrustStore<u32> = TrustEngine::open_with(
            &dir,
            LogOptions {
                fsync: FsyncPolicy::OnFlush,
                compact_every: 1 << 16,
                ..LogOptions::default()
            },
        )
        .expect("durable store opens");
        durable.register_task(task.clone());
        for _ in 0..3 {
            let active =
                durable.delegate(7, &task, goal, Context::amicable(task.id())).activate(&durable);
            active
                .execute(&mut durable, DelegationOutcome::succeeded(0.8, 0.1), &betas)
                .expect("outcome is unit-range");
        }
        // dropped without an explicit flush: the journal flushes on drop
    }
    let recovered: DurableTrustStore<u32> = TrustEngine::open(&dir).expect("reopen recovers");
    println!(
        "\nafter a simulated restart: trust toward peer 7 = {}, {} interaction(s) and {} \
         usage-log entries remembered",
        recovered.trustworthiness(7, task.id()).expect("recovered record"),
        recovered.record(7, task.id()).expect("recovered record").interactions,
        recovered.usage_log(7).total(),
    );
    drop(recovered);
    let _ = std::fs::remove_dir_all(&dir);

    // 8. serving trust: the same process as a shared async service. A
    //    `TrustService` actor owns the engine on its own thread; cloneable
    //    `Send` handles evaluate, commit and query through `async fn`s
    //    (driven here by the bundled `block_on` — no runtime needed), and
    //    adjacent commits racing in from many requesters fold in one
    //    batched storage pass per mailbox drain. See
    //    `examples/serving_trust.rs` for the durable, restart-surviving
    //    variant.
    let mut shared: TrustStore<u32> = TrustStore::new();
    shared.register_task(task.clone());
    let service = TrustService::spawn(shared, ServiceOptions::default());
    std::thread::scope(|scope| {
        for requester in 0..3u32 {
            let handle = service.handle();
            let task = task.clone();
            scope.spawn(move || {
                block_on(async {
                    // each requester explores its own trustee concurrently
                    let trustee = 100 + requester;
                    for _ in 0..4 {
                        let request = DelegationRequest::new(
                            trustee,
                            &task,
                            goal,
                            Context::amicable(task.id()),
                        )
                        .with_prior(optimistic);
                        let decision = handle.delegate(request).await.expect("service alive");
                        let Decision::Delegate(active) = decision else { continue };
                        let completed = active
                            .finish(DelegationOutcome::succeeded(0.8, 0.2))
                            .expect("outcome is unit-range");
                        handle.commit(completed).await.expect("service alive");
                    }
                })
            });
        }
    });
    // graceful shutdown drains the mailbox and hands the engine back
    let served = service.shutdown().expect("service drains and stops");
    println!(
        "\nserved trust: {} trustees learned through concurrent handles, e.g. toward 100: {}",
        served.known_peers().len(),
        served.trustworthiness(100, task.id()).expect("committed"),
    );

    // 9. scaling out: the same facade partitioned over shard actors. Each
    //    shard thread owns an independent engine; the one routing handle
    //    hashes the trustee to its owning shard, splits a batch into one
    //    vectored message per shard (receipts re-stitched in caller
    //    order), and fans broadcasts out — `Freshness::Aligned` rendezvous
    //    every shard at one barrier for a true global cut. See
    //    `examples/sharded_service.rs` for the durable per-shard fleet.
    let fleet = ShardedTrustService::spawn_sharded(3, ServiceOptions::default(), |_shard| {
        TrustEngine::with_backend(siot::core::backend::ShardedBackend::<u32>::default())
    });
    let routing = fleet.handle();
    block_on(async {
        routing.register_task(task.clone()).await.expect("fleet alive");
        let scratch: TrustStore<u32> = TrustStore::new();
        let batch: Vec<_> = (0..30u32)
            .map(|peer| {
                DelegationRequest::new(peer, &task, goal, Context::amicable(task.id()))
                    .committed()
                    .activate(&scratch)
                    .finish(DelegationOutcome::succeeded(0.8, 0.2))
                    .expect("outcome is unit-range")
            })
            .collect();
        let receipts = routing.submit_batch(batch).await.expect("fleet alive");
        let cut = routing.known_peers_with(Freshness::Aligned).await.expect("fleet alive");
        let stats = routing.shard_stats().await.expect("fleet alive");
        println!(
            "\nsharded service: {} receipts over {} shards, {} peers in an aligned cut, \
             per-shard commits {:?}",
            receipts.len(),
            routing.shard_count(),
            cut.len(),
            stats.iter().map(|s| s.committed).collect::<Vec<_>>(),
        );
    });
    fleet.shutdown().expect("every shard drains and stops");

    // 10. federating: any service tier served over TCP. A
    //     `RemoteTrustServer` fronts the fleet; a
    //     `RemoteTrustServiceHandle` in another process connects and
    //     mirrors the whole handle API — pipelined submits, typed errors,
    //     aligned cuts — over CRC-framed frames that round-trip every
    //     real bit-identically. See `examples/federated_service.rs` for
    //     the full federated lifecycle.
    let fleet = ShardedTrustService::spawn_sharded(2, ServiceOptions::default(), |_shard| {
        TrustEngine::with_backend(siot::core::backend::ShardedBackend::<u32>::default())
    });
    let server = RemoteTrustServer::bind("127.0.0.1:0", fleet.handle()).expect("loopback bind");
    let remote =
        RemoteTrustServiceHandle::<u32>::connect(server.local_addr()).expect("loopback connect");
    block_on(async {
        remote.register_task(task.clone()).await.expect("server alive");
        let scratch: TrustStore<u32> = TrustStore::new();
        let completed = DelegationRequest::new(7, &task, goal, Context::amicable(task.id()))
            .committed()
            .activate(&scratch)
            .finish(DelegationOutcome::succeeded(0.8, 0.2))
            .expect("outcome is unit-range");
        let receipt = remote.commit(completed).await.expect("server alive");
        let cut = remote.known_peers_cut(Freshness::Aligned).await.expect("server alive");
        println!(
            "\nfederated service: receipt for trustee {} over TCP, aligned cut of {} peer(s) \
             at fleet epochs {:?}",
            receipt.trustee,
            cut.value.len(),
            cut.epochs,
        );
    });
    server.shutdown();
    fleet.shutdown().expect("every shard drains and stops");

    // 11. surviving failure: several nodes behind ONE fault-tolerant
    //     fleet handle. Peers route to nodes by the same stable trustee
    //     hash the shards use; commits carry (session, seq) idempotency
    //     tags the servers deduplicate, so a commit retried across a dead
    //     connection or node restart replays instead of double-counting;
    //     a down node fails only its own key range, with typed errors and
    //     capped-backoff reconnects. See `examples/fleet_failover.rs`
    //     for the full kill-and-recover lifecycle.
    let nodes: Vec<_> = (0..2)
        .map(|_| {
            ShardedTrustService::spawn_sharded(2, ServiceOptions::default(), |_shard| {
                TrustEngine::with_backend(siot::core::backend::ShardedBackend::<u32>::default())
            })
        })
        .collect();
    let servers: Vec<_> = nodes
        .iter()
        .map(|n| RemoteTrustServer::bind("127.0.0.1:0", n.handle()).expect("loopback bind"))
        .collect();
    let addrs: Vec<String> = servers.iter().map(|s| s.local_addr().to_string()).collect();
    let fleet_handle = FleetTrustHandle::<u32>::connect(addrs).expect("nodes reachable");
    block_on(async {
        fleet_handle.register_task(task.clone()).await.expect("fleet alive");
        let scratch: TrustStore<u32> = TrustStore::new();
        let batch: Vec<_> = (0..30u32)
            .map(|peer| {
                DelegationRequest::new(peer, &task, goal, Context::amicable(task.id()))
                    .committed()
                    .activate(&scratch)
                    .finish(DelegationOutcome::succeeded(0.8, 0.2))
                    .expect("outcome is unit-range")
            })
            .collect();
        // the idempotent tagged path: stamped once, safe to retry forever
        let receipts = fleet_handle.submit_batch(batch).await.expect("fleet alive");
        let cut = fleet_handle.known_peers_cut(Freshness::Aligned).await.expect("fleet alive");
        println!(
            "\nfault-tolerant fleet: {} tagged receipts across {} nodes, {} peers in a \
             fleet-wide cut (complete: {})",
            receipts.len(),
            fleet_handle.node_count(),
            cut.value.len(),
            cut.complete(),
        );
    });
    for server in servers {
        server.shutdown();
    }
    for node in nodes {
        node.shutdown().expect("every node's shards drain and stop");
    }

    // 12. reading at scale: at the end of every mailbox drain that folded
    //     commits, each shard publishes an immutable, epoch-stamped
    //     `ReadSnapshot` into an Arc-swapped slot. `Freshness::snapshot(n)`
    //     answers reads straight off the latest snapshots — zero mailbox
    //     traffic, bit-identical to a fresh read at an aligned cut — and
    //     falls through to the mailbox whenever a shard's snapshot trails
    //     its last fold by more than `n` drain epochs. See
    //     `examples/read_replicas.rs` for the writer-stream-vs-many-readers
    //     lifecycle.
    let fleet = ShardedTrustService::spawn_sharded(2, ServiceOptions::default(), |_shard| {
        TrustEngine::with_backend(siot::core::backend::ShardedBackend::<u32>::default())
    });
    let routing = fleet.handle();
    block_on(async {
        routing.register_task(task.clone()).await.expect("fleet alive");
        let scratch: TrustStore<u32> = TrustStore::new();
        let batch: Vec<_> = (0..30u32)
            .map(|peer| {
                DelegationRequest::new(peer, &task, goal, Context::amicable(task.id()))
                    .committed()
                    .activate(&scratch)
                    .finish(DelegationOutcome::succeeded(0.8, 0.2))
                    .expect("outcome is unit-range")
            })
            .collect();
        routing.submit_batch(batch).await.expect("fleet alive");
        let fresh =
            routing.trustworthiness(7, task.id()).await.expect("fleet alive").expect("committed");
        let fast = routing
            .trustworthiness_with(7, task.id(), Freshness::snapshot(0))
            .await
            .expect("fleet alive")
            .expect("committed");
        let stats = routing.shard_stats().await.expect("fleet alive");
        println!(
            "\nsnapshot reads: fresh {fresh} == snapshot {fast}, published epochs {:?}",
            stats.iter().map(|s| s.published_epoch).collect::<Vec<_>>(),
        );
    });
    // or skip the service entirely: a cloneable reader off the slots
    let replica = routing.replica();
    let cut = replica.known_peers();
    println!(
        "replica handle: {} peers across {} shard snapshots, max epoch lag {}",
        cut.value.len(),
        replica.shard_count(),
        replica.max_lag(),
    );

    // 13. and over the wire: the server answers snapshot-freshness reads on
    //     the connection's reader thread — no actor dispatch at all — and
    //     the `QueryMany` opcode batches homogeneous reads into one frame,
    //     which is what lets the remote read mix keep up with (and beat)
    //     the in-process mailbox path.
    let server = RemoteTrustServer::bind("127.0.0.1:0", routing.clone()).expect("loopback bind");
    let remote =
        RemoteTrustServiceHandle::<u32>::connect(server.local_addr()).expect("loopback connect");
    block_on(async {
        let items: Vec<_> = (0..30u32).map(|peer| (peer, task.id())).collect();
        let answers =
            remote.trustworthiness_many(items, Freshness::snapshot(0)).await.expect("server alive");
        println!(
            "remote snapshot batch: {}/30 trustworthiness answers in one QueryMany frame",
            answers.iter().flatten().count(),
        );
    });
    server.shutdown();
    fleet.shutdown().expect("every shard drains and stops");
}
