//! Federated service: a trust fleet served over TCP to another process.
//!
//! `RemoteTrustServer` exposes a running `TrustService` or
//! `ShardedTrustService` on a socket; `RemoteTrustServiceHandle` connects
//! and speaks the same `submit`/`evaluate`/`known_peers`/… vocabulary as
//! a local handle — plain `std` futures, fully pipelined, every real
//! crossing the wire as its IEEE-754 bits. This example walks the
//! federated lifecycle inside one binary (the two halves would normally
//! be two processes on two machines):
//!
//! 1. the **serving side** spawns a two-shard fleet and binds a loopback
//!    `RemoteTrustServer` in front of its routing handle;
//! 2. **remote requesters** connect, then pipeline a window of committed
//!    sessions before awaiting any receipt — the same eager-submit shape
//!    a local handle rewards, now amortizing socket round trips;
//! 3. remote reads mirror the local query surface: point reads
//!    (`trustworthiness`, `record`), broadcasts (`known_peers`), and the
//!    epoch-stamped `known_peers_cut(Freshness::Aligned)` — the server
//!    runs its rendezvous barrier on the caller's behalf, so the returned
//!    epoch vector names one global instant of the fleet, observable
//!    from another process;
//! 4. `shutdown()` through the remote handle stops the **served
//!    service** (drain + flush, the local guarantees); the transport
//!    answers later calls with typed `ServiceStopped` — never a hang;
//! 5. the fleet is **durable** (per-shard `open_shard` journals), so a
//!    restarted serving process reopens the same directories, binds a
//!    fresh port, and answers remote queries from remembered trust.
//!
//! Run with: `cargo run --example federated_service`

use siot::core::prelude::*;
use siot::core::service::{block_on, Freshness, ServiceOptions, ShardedTrustService};

const SHARDS: usize = 2;

/// Hidden ground truth for the demo's trustees.
fn competence(trustee: u64) -> f64 {
    0.25 + 0.7 * ((trustee % 10) as f64) / 9.0
}

fn spawn_fleet(root: &std::path::Path, task: &Task) -> ShardedTrustService<u64, LogBackend<u64>> {
    ShardedTrustService::try_spawn_sharded(SHARDS, ServiceOptions::default(), |shard| {
        // shard-000/, shard-001/ — one journal per shard actor
        let mut engine: DurableTrustStore<u64> = TrustEngine::open_shard(root, shard)?;
        // task definitions are configuration, re-registered after opening
        engine.register_task(task.clone());
        Ok(engine)
    })
    .expect("every shard directory opens")
}

fn main() {
    let task = Task::uniform(TaskId(0), [CharacteristicId(0)]).expect("non-empty task");
    let root = std::env::temp_dir().join(format!("siot-federated-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&root);

    // ---- the serving side (normally its own process) --------------------
    let fleet = spawn_fleet(&root, &task);
    let server =
        RemoteTrustServer::bind("127.0.0.1:0", fleet.handle()).expect("loopback port available");
    let addr = server.local_addr();
    println!("serving a durable {SHARDS}-shard fleet on {addr}");

    // ---- remote requesters (normally other processes) -------------------
    std::thread::scope(|scope| {
        for requester in 0..3u64 {
            let task = task.clone();
            scope.spawn(move || {
                // each requester dials its own connection; clones of one
                // handle would share a connection just as well
                let remote =
                    RemoteTrustServiceHandle::<u64>::connect(addr).expect("server reachable");
                let scratch: TrustStore<u64> = TrustStore::new();
                // pipeline: every submit's frame is written eagerly, so all
                // twenty cross the socket before the first receipt is awaited
                let receipts: Vec<_> = (0..20u64)
                    .map(|i| {
                        let trustee = requester * 100 + i;
                        let completed = DelegationRequest::new(
                            trustee,
                            &task,
                            Goal::ANY,
                            Context::amicable(task.id()),
                        )
                        .committed()
                        .activate(&scratch)
                        .finish(DelegationOutcome::succeeded(competence(trustee), 0.1))
                        .expect("outcome is unit-range");
                        remote.submit(completed)
                    })
                    .collect();
                let acked = receipts.into_iter().map(block_on).filter(Result::is_ok).count();
                println!("  requester {requester}: {acked} receipts over the wire");
            });
        }
    });

    // ---- remote reads ----------------------------------------------------
    let remote = RemoteTrustServiceHandle::<u64>::connect(addr).expect("server reachable");
    block_on(async {
        // an aligned cut across the wire: the server rendezvous every shard
        // at one barrier, and the epoch vector stamps the instant
        let cut = remote.known_peers_cut(Freshness::Aligned).await.expect("server alive");
        println!("\naligned cut: {} trustees at fleet epochs {:?}", cut.value.len(), cut.epochs);
        for &trustee in cut.value.iter().take(4) {
            let tw = remote
                .trustworthiness(trustee, TaskId(0))
                .await
                .expect("server alive")
                .expect("committed trustee");
            println!("  trustee {trustee}: {tw} (actual {:.2})", competence(trustee));
        }
        let stats = remote.shard_stats().await.expect("server alive");
        println!(
            "per-shard commits {:?} — the same saturation counters a local handle reads",
            stats.iter().map(|s| s.committed).collect::<Vec<_>>(),
        );

        // stopping the served service through the wire: every shard drains
        // and its journal flushes; the transport stays up and answers with
        // typed errors
        remote.shutdown().await.expect("graceful remote shutdown");
        let refused = remote.known_peers().await;
        println!("after remote shutdown, a query returns: {refused:?}");
        assert!(matches!(refused, Err(TrustError::ServiceStopped)));
    });
    server.shutdown();
    drop(fleet);

    // ---- a serving-process restart ---------------------------------------
    // the same shard directories reopen (replaying each journal), a fresh
    // port binds, and a reconnecting requester reads remembered trust
    let fleet = spawn_fleet(&root, &task);
    let server =
        RemoteTrustServer::bind("127.0.0.1:0", fleet.handle()).expect("loopback port available");
    let remote =
        RemoteTrustServiceHandle::<u64>::connect(server.local_addr()).expect("server reachable");
    block_on(async {
        let trustees = remote.known_peers().await.expect("server alive");
        let record =
            remote.record(7, task.id()).await.expect("server alive").expect("remembered trustee");
        println!(
            "\nafter the restart, the wire still serves {} trustees; trustee 7: {} \
             interaction(s) remembered",
            trustees.len(),
            record.interactions,
        );
    });
    drop(remote);
    server.shutdown();
    fleet.shutdown().expect("every shard drains and flushes");
    let _ = std::fs::remove_dir_all(&root);
    println!("transport closed; federated lifecycle complete");
}
