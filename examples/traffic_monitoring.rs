//! The paper's real-time-traffic scenario (§4.2–§4.3): inferential
//! transfer and transitivity of trust.
//!
//! Bob's smartphone provided GPS and image data before. Can Alice trust it
//! for real-time traffic monitoring — a task type she never delegated to
//! Bob? With characteristic-based inference (Eq. 4): yes. And when Alice
//! only knows Bob through intermediaries, trust transits with the Eq. 7
//! combination — conservatively or aggressively.
//!
//! Run with: `cargo run --example traffic_monitoring`

use siot::core::prelude::*;
use siot::core::transitivity::{aggressive_combine, characteristic_along_path, conservative_path};

const GPS: CharacteristicId = CharacteristicId(0);
const IMAGE: CharacteristicId = CharacteristicId(1);
const VELOCITY: CharacteristicId = CharacteristicId(2);

fn main() {
    // previously experienced tasks
    let gps_task = Task::uniform(TaskId(0), [GPS]).expect("non-empty");
    let imaging = Task::uniform(TaskId(1), [IMAGE]).expect("non-empty");
    let dashcam = Task::new(TaskId(2), [(GPS, 1.0), (VELOCITY, 2.0)]).expect("valid weights");

    // the new task: traffic monitoring = GPS + image + velocity
    let traffic = Task::uniform(TaskId(9), [GPS, IMAGE, VELOCITY]).expect("non-empty");

    // ----- inference from Alice's own history with Bob (Eq. 4) ----------
    let experiences = [
        Experience::new(&gps_task, 0.92),
        Experience::new(&imaging, 0.78),
        Experience::new(&dashcam, 0.85),
    ];
    let tw = infer_task(&traffic, &experiences).expect("all characteristics covered");
    println!("Alice's inferred trust toward Bob for traffic monitoring: {tw:.3}");
    println!("(GPS from τ0/τ2, imaging from τ1, velocity from τ2 — no new delegation needed)\n");

    // a task with an uncovered characteristic stays un-inferable:
    let audio = Task::uniform(TaskId(10), [CharacteristicId(7)]).expect("non-empty");
    println!("audio sensing inference: {:?}\n", infer_task(&audio, &experiences));

    // ----- transitivity: Alice — Carol — Bob (Eqs. 7–17) ----------------
    let gates = TransitivityGates { omega1: 0.6, omega2: 0.4 };

    // conservative: every hop must cover ALL characteristics
    let alice_carol = vec![
        Experience::new(&gps_task, 0.9),
        Experience::new(&imaging, 0.88),
        Experience::new(&dashcam, 0.91),
    ];
    let carol_bob = vec![
        Experience::new(&gps_task, 0.8),
        Experience::new(&imaging, 0.75),
        Experience::new(&dashcam, 0.82),
    ];
    let links = vec![alice_carol, carol_bob];
    match conservative_path(&traffic, &links, &gates) {
        Some(tw) => println!("conservative transitivity (single path): {tw:.3}"),
        None => println!("conservative transitivity blocked"),
    }

    // aggressive: characteristics may travel different paths
    let via_carol =
        vec![vec![Experience::new(&gps_task, 0.9)], vec![Experience::new(&gps_task, 0.8)]];
    let via_dave = vec![
        vec![Experience::new(&imaging, 0.95), Experience::new(&dashcam, 0.9)],
        vec![Experience::new(&imaging, 0.7), Experience::new(&dashcam, 0.85)],
    ];
    let per_char = [
        (GPS, characteristic_along_path(GPS, &via_carol, &gates)),
        (IMAGE, characteristic_along_path(IMAGE, &via_dave, &gates)),
        (VELOCITY, characteristic_along_path(VELOCITY, &via_dave, &gates)),
    ];
    let estimates: Vec<(CharacteristicId, f64)> =
        per_char.iter().filter_map(|&(c, est)| est.map(|e| (c, e))).collect();
    for (c, e) in &estimates {
        println!("  characteristic {c} assessed along its own path: {e:.3}");
    }
    match aggressive_combine(&traffic, &estimates) {
        Ok(tw) => println!("aggressive transitivity (Eq. 17 recombination): {tw:.3}"),
        Err(e) => println!("aggressive transitivity failed: {e}"),
    }

    // the Eq. 7 point: agreeing mistrust is still information
    println!(
        "\nEq. 7 vs the traditional product on two distrusted links (0.2, 0.2): {:.3} vs {:.3}",
        two_hop(0.2, 0.2),
        traditional_chain(&[0.2, 0.2])
    );
}
