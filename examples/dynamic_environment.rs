//! Environment-compensated trust updates (§4.5 / Fig. 15).
//!
//! A trustee with competence 0.8 operates through an amicable → hostile →
//! partially-recovered environment. Plain updates confuse the weather with
//! the agent; the removal function r(·) (Eq. 29) does not.
//!
//! Run with: `cargo run --example dynamic_environment`

use siot::sim::scenario::environment::{run, EnvironmentConfig};

fn main() {
    let cfg = EnvironmentConfig {
        competence: 0.8,
        phases: vec![(60, 1.0), (60, 0.4), (60, 0.7)],
        runs: 50,
        ..Default::default()
    };
    let out = run(&cfg);

    println!("iter   env   ideal  traditional  proposed");
    for i in (0..out.len()).step_by(12) {
        println!(
            "{i:>4}  {:>4.2}  {:>6.3}  {:>11.3}  {:>8.3}",
            out.environment[i], out.ideal[i], out.traditional[i], out.proposed[i]
        );
    }
    println!(
        "\nhostile-phase averages: traditional {:.2} (thinks the trustee got worse), \
         proposed {:.2} (knows it is the environment)",
        out.traditional[70..120].iter().sum::<f64>() / 50.0,
        out.proposed[70..120].iter().sum::<f64>() / 50.0,
    );
}
