//! Attack resilience of the clarified trust model: self-promotion,
//! opportunistic service, and recommendation poisoning (bad-mouthing /
//! ballot-stuffing), measured against a naive baseline.
//!
//! Run with: `cargo run --example attack_resilience`

use siot::sim::attacks::{execution_attack_resilience, recommendation_attack_impact, Attack};

fn main() {
    println!("== execution attacks (200 interactions, honest alternative at 0.8) ==\n");
    let attacks = [
        Attack::SelfPromotion { claimed: 0.99, actual: 0.2 },
        Attack::OpportunisticService { good: 0.95, bad: 0.1, honeymoon: 10 },
    ];
    println!(
        "{:<22} {:>18} {:>14} {:>22} {:>18}",
        "attack", "proposed quality", "naive quality", "attacker share (prop)", "share (naive)"
    );
    for attack in attacks {
        let out = execution_attack_resilience(attack, 0.8, 200, 42);
        println!(
            "{:<22} {:>18.2} {:>14.2} {:>21.0}% {:>17.0}%",
            attack.name(),
            out.proposed_quality,
            out.naive_quality,
            out.attacker_share_proposed * 100.0,
            out.attacker_share_naive * 100.0,
        );
    }

    println!("\n== recommendation poisoning (true quality 0.9, reported 0.05) ==\n");
    let (poisoned, _) = recommendation_attack_impact(0.9, 0.05, 0.9, 0.6);
    let (_, gated) = recommendation_attack_impact(0.9, 0.05, 0.3, 0.6);
    println!("estimate while the bad-mouther is still trusted:   {poisoned:.2}");
    println!(
        "estimate after ω₁ downgrades the recommender:      {gated:.2} (ignorance, not poison)"
    );
    println!("\nthe ω₁ gate turns slander into a no-op instead of a verdict.");
}
