//! Read replicas: epoch-snapshotted, mailbox-free reads with bounded
//! staleness over a durable sharded fleet.
//!
//! SIoT traffic is read-dominated — agents *evaluate* far more often
//! than they *commit* — so the replica tier lets readers scale
//! independently of the write path. At the end of every mailbox drain
//! that folded commits, each shard actor publishes an immutable,
//! epoch-stamped `ReadSnapshot` into an `Arc`-swapped slot; snapshot
//! readers answer off the latest snapshots with **zero mailbox
//! traffic**, and `Freshness::Snapshot { max_epoch_lag }` turns the
//! staleness into a contract: served from the snapshot only while it
//! trails the shard's last fold by at most that many drain epochs,
//! falling through to the mailbox otherwise. This example walks the
//! lifecycle:
//!
//! 1. spawn a **durable** 3-shard fleet with `publish_every: 4`, so the
//!    published snapshot is allowed to trail the folds — lag is visible;
//! 2. one writer thread streams awaited commits (each one is one
//!    mutating drain on its owning shard);
//! 3. many reader threads ride the cloneable `ReplicaHandle`
//!    concurrently — never touching a mailbox, never observing a torn
//!    snapshot, watching per-shard epochs only ever move forward;
//! 4. the epoch-lag demonstration: `shard_stats()` shows
//!    `published_epoch` trailing `drains`, a tight
//!    `Freshness::snapshot(0)` read falls through to the mailbox, and a
//!    loose `Freshness::snapshot(64)` read is served off the snapshot;
//! 5. graceful shutdown flushes every shard's journal.
//!
//! Run with: `cargo run --example read_replicas`

use std::sync::atomic::{AtomicBool, Ordering};

use siot::core::prelude::*;
use siot::core::service::{block_on, Freshness, ServiceOptions, ShardedTrustService};

const SHARDS: usize = 3;
const TRUSTEES: u32 = 60;
const ROUNDS: usize = 7;
const READERS: u32 = 4;

fn main() {
    let task = Task::uniform(TaskId(0), [CharacteristicId(0)]).expect("non-empty task");
    let root = std::env::temp_dir().join(format!("siot-read-replicas-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&root);

    // 1. a durable fleet that publishes every 4th mutating drain: write-hot
    //    shards amortize publication, and readers get to see real lag
    let options = ServiceOptions { publish_every: 4, ..ServiceOptions::default() };
    let fleet = ShardedTrustService::try_spawn_sharded(SHARDS, options, |shard| {
        let mut engine: DurableTrustStore<u32> = TrustEngine::open_shard(&root, shard)?;
        engine.register_task(task.clone());
        Ok(engine)
    })
    .expect("every shard directory opens");
    let routing = fleet.handle();
    block_on(routing.register_task(task.clone())).expect("fleet alive");

    // the replica handle is the mailbox-free reader: cloneable, Send,
    // serving every read off the shards' latest published snapshots
    let replica = routing.replica();
    let writer_done = AtomicBool::new(false);

    std::thread::scope(|scope| {
        // 2. ONE writer stream: sequentially awaited commits, each folded
        //    in its own drain on the trustee's owning shard
        let writer_routing = routing.clone();
        let writer_task = task.clone();
        let done = &writer_done;
        scope.spawn(move || {
            block_on(async {
                let scratch: TrustStore<u32> = TrustStore::new();
                for round in 0..ROUNDS {
                    for trustee in 0..TRUSTEES {
                        let quality = 0.3 + 0.6 * f64::from(trustee % 10) / 9.0;
                        let completed = DelegationRequest::new(
                            trustee,
                            &writer_task,
                            Goal::ANY,
                            Context::amicable(writer_task.id()),
                        )
                        .committed()
                        .activate(&scratch)
                        .finish(DelegationOutcome::succeeded(quality, 0.1))
                        .expect("outcome is unit-range");
                        writer_routing.commit(completed).await.expect("fleet alive");
                    }
                    println!("writer: round {} of {ROUNDS} committed", round + 1);
                }
            });
            done.store(true, Ordering::Release);
        });

        // 3. MANY snapshot readers, zero mailbox traffic: each hammers the
        //    replica and checks that published epochs only move forward
        for reader in 0..READERS {
            let replica = replica.clone();
            let task_id = task.id();
            let done = &writer_done;
            scope.spawn(move || {
                let mut floors = vec![0u64; SHARDS];
                let mut reads = 0u64;
                let mut peak_lag = 0u64;
                while !done.load(Ordering::Acquire) {
                    for trustee in 0..TRUSTEES {
                        // a snapshot always answers (possibly None before the
                        // first publication) — no await, no actor round trip
                        let _ = replica.trustworthiness(trustee, task_id);
                        reads += 1;
                    }
                    peak_lag = peak_lag.max(replica.max_lag());
                    for (floor, snapshot) in floors.iter_mut().zip(replica.snapshots()) {
                        assert!(snapshot.epoch() >= *floor, "epochs never move backward");
                        *floor = snapshot.epoch();
                    }
                }
                println!(
                    "reader {reader}: {reads} snapshot reads, epochs reached {floors:?}, \
                     peak lag seen {peak_lag}",
                );
            });
        }
    });

    // 4. the lag contract, observable and enforced
    block_on(async {
        let stats = routing.shard_stats().await.expect("fleet alive");
        println!("\nper-shard staleness (publish_every = 4):");
        for (shard, s) in stats.iter().enumerate() {
            println!(
                "  shard {shard}: snapshot published at epoch {} of {} drain cycles",
                s.published_epoch, s.drains,
            );
        }
        println!("  fleet-wide epoch lag right now: {}", replica.max_lag());
        // a loose bound is served straight off the snapshot — possibly the
        // value from a few folds ago...
        let relaxed = routing
            .trustworthiness_with(7, task.id(), Freshness::snapshot(64))
            .await
            .expect("fleet alive")
            .expect("committed trustee");
        // ...while a tight bound falls through to the mailbox whenever the
        // snapshot trails by more than the bound, so it always reflects
        // every awaited commit — the choice prices freshness, never safety
        let tight = routing
            .trustworthiness_with(7, task.id(), Freshness::snapshot(0))
            .await
            .expect("fleet alive")
            .expect("committed trustee");
        println!("\ntrustee 7: snapshot(64) says {relaxed}, snapshot(0) says {tight}");
    });

    // 5. graceful shutdown: every shard drained, every journal flushed
    drop(replica);
    drop(routing);
    let engines = fleet.shutdown().expect("every shard drains and flushes");
    println!(
        "shut down; per-shard record counts {:?} — state is on disk",
        engines.iter().map(TrustEngine::record_count).collect::<Vec<_>>(),
    );
    drop(engines);
    let _ = std::fs::remove_dir_all(&root);
}
