//! Sharded service: a partitioned, durable trust fleet behind one
//! routing handle.
//!
//! One `TrustService` actor is one thread; when a fleet's commit volume
//! outgrows it, `ShardedTrustService` runs N independent shard actors —
//! each owning its own engine and, here, its own append-only log
//! directory — behind a single cloneable handle that routes by a stable
//! hash of the trustee. This example walks the sharded lifecycle:
//!
//! 1. spawn a **durable** fleet: `TrustEngine::open_shard(root, i)` gives
//!    every shard its own `shard-XXX/` journal under one root;
//! 2. requester threads commit through clones of the routing handle —
//!    peer-targeted calls land on the owning shard, and a whole batch
//!    travels as one vectored `submit_batch` per shard, receipts
//!    re-stitched in caller order;
//! 3. broadcasts fan out and merge: `Freshness::Relaxed` (the default)
//!    reads each shard at its own instant, `Freshness::Aligned`
//!    rendezvous every shard at one barrier for a true global cut;
//! 4. `shard_stats()` exposes per-shard mailbox depth and drained-batch
//!    sizes — the backpressure signal;
//! 5. shutdown drains and flushes every shard, and a "restart" reopens
//!    the same per-shard directories (same shard count — records do not
//!    migrate) and serves from remembered trust.
//!
//! Run with: `cargo run --example sharded_service`

use siot::core::prelude::*;
use siot::core::service::{block_on, Freshness, ServiceOptions, ShardedTrustService};

const SHARDS: usize = 3;

/// Hidden ground truth for the demo's trustees.
fn competence(trustee: u32) -> f64 {
    0.25 + 0.7 * f64::from(trustee % 10) / 9.0
}

fn spawn_fleet(root: &std::path::Path, task: &Task) -> ShardedTrustService<u32, LogBackend<u32>> {
    let fleet =
        ShardedTrustService::try_spawn_sharded(SHARDS, ServiceOptions::default(), |shard| {
            // shard-000/, shard-001/, ... — one journal per shard actor
            let mut engine: DurableTrustStore<u32> = TrustEngine::open_shard(root, shard)?;
            // task definitions are configuration, re-registered after opening
            engine.register_task(task.clone());
            Ok(engine)
        })
        .expect("every shard directory opens");
    println!("fleet up: {} shard actors under {}", fleet.shard_count(), root.display());
    fleet
}

fn main() {
    let task = Task::uniform(TaskId(0), [CharacteristicId(0)]).expect("non-empty task");
    let root = std::env::temp_dir().join(format!("siot-sharded-service-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&root);

    // ---- first life of the fleet ---------------------------------------
    let fleet = spawn_fleet(&root, &task);
    std::thread::scope(|scope| {
        for requester in 0..3u32 {
            let routing = fleet.handle();
            let task = task.clone();
            scope.spawn(move || {
                block_on(async {
                    // each requester reports a whole slate of observations
                    // in one vectored call: the handle splits it into one
                    // sub-batch per owning shard and stitches the receipts
                    // back in caller order
                    let scratch: TrustStore<u32> = TrustStore::new();
                    let batch: Vec<_> = (0..20u32)
                        .map(|i| {
                            let trustee = requester * 100 + i;
                            let q = competence(trustee);
                            DelegationRequest::new(
                                trustee,
                                &task,
                                Goal::ANY,
                                Context::amicable(task.id()),
                            )
                            .committed()
                            .activate(&scratch)
                            .finish(DelegationOutcome::succeeded(q, 0.1))
                            .expect("outcome is unit-range")
                        })
                        .collect();
                    let receipts = routing.submit_batch(batch).await.expect("fleet alive");
                    println!(
                        "  requester {requester}: {} receipts, first trustee {}",
                        receipts.len(),
                        receipts[0].trustee
                    );
                })
            });
        }
    });

    let routing = fleet.handle();
    block_on(async {
        // an aligned broadcast: every shard flushes its pending commits,
        // then all of them snapshot at one rendezvous — a global cut
        let cut = routing.known_peers_with(Freshness::Aligned).await.expect("fleet alive");
        let stats = routing.shard_stats().await.expect("fleet alive");
        println!(
            "\naligned cut sees {} trustees; per-shard commits {:?}",
            cut.len(),
            stats.iter().map(|s| s.committed).collect::<Vec<_>>(),
        );
    });
    drop(routing);

    // graceful shutdown: every shard drained, every journal flushed
    let engines = fleet.shutdown().expect("every shard drains and flushes");
    println!(
        "shut down; per-shard record counts {:?} — state is on disk",
        engines.iter().map(TrustEngine::record_count).collect::<Vec<_>>(),
    );
    drop(engines);

    // ---- second life: reopen the same shard directories ----------------
    let fleet = spawn_fleet(&root, &task);
    let routing = fleet.handle();
    println!("\nafter the restart, the fleet still knows its trustees:");
    block_on(async {
        let trustees = routing.known_peers().await.expect("fleet alive");
        for &trustee in trustees.iter().take(4) {
            let tw = routing
                .trustworthiness(trustee, task.id())
                .await
                .expect("fleet alive")
                .expect("remembered trustee");
            println!(
                "  trustee {trustee} (shard {}): {tw} (actual {:.2})",
                routing.shard_of(trustee),
                competence(trustee)
            );
        }
        println!("  ... and {} more", trustees.len().saturating_sub(4));
    });
    drop(routing);
    fleet.shutdown().expect("every shard drains and flushes");
    let _ = std::fs::remove_dir_all(&root);
}
