//! Fleet failover: a multi-node trust fleet surviving a node kill.
//!
//! `FleetTrustHandle` routes peers across N independent TCP nodes by the
//! same stable trustee hash the sharded tier uses in-process — and owns
//! the whole failure model: per-request deadlines (typed `TimedOut`,
//! never a hang), capped-backoff reconnects, and idempotent
//! `(session, seq)`-tagged commits that the server deduplicates, so a
//! commit retried across a connection loss or node restart **replays its
//! receipts instead of folding twice**. This example walks the failure
//! lifecycle inside one binary (each node would normally be its own
//! process on its own machine):
//!
//! 1. two **durable nodes** — each a 2-shard fleet over per-shard
//!    journals — bind loopback `RemoteTrustServer`s, and a
//!    `FleetTrustHandle` connects to both;
//! 2. a **workload** streams tagged commit batches through the fleet,
//!    pipelined exactly like the single-node remote handle;
//! 3. mid-stream, one node's transport is **killed** and rebound on a
//!    **new port** with the *same* dedup window (`bind_with`), then
//!    `replace_node` points the fleet at the replacement — in-flight
//!    batches reconnect, resend their tags, and the server replays what
//!    it already folded;
//! 4. with one node still down, the fleet **degrades gracefully**: the
//!    live node's key range keeps answering, a broadcast cut reports the
//!    missing node instead of failing, reads of dead-node peers fail
//!    fast with a typed `NodeUnavailable` naming the address;
//! 5. the final **rankings converge**: every commit counted exactly
//!    once, bit-identically to a sequential fold of the same workload.
//!
//! Run with: `cargo run --example fleet_failover`

use siot::core::prelude::*;
use siot::core::service::{block_on, Freshness, ServiceOptions, ShardedTrustService};
use std::time::Duration;

const NODES: usize = 2;
const SHARDS: usize = 2;
const BATCHES: usize = 40;
const BATCH: usize = 250;

/// Hidden ground truth for the demo's trustees.
fn competence(trustee: u64) -> f64 {
    0.25 + 0.7 * ((trustee % 10) as f64) / 9.0
}

fn spawn_node(root: &std::path::Path, task: &Task) -> ShardedTrustService<u64, LogBackend<u64>> {
    ShardedTrustService::try_spawn_sharded(SHARDS, ServiceOptions::default(), |shard| {
        let mut engine: DurableTrustStore<u64> = TrustEngine::open_shard(root, shard)?;
        engine.register_task(task.clone());
        Ok(engine)
    })
    .expect("every shard directory opens")
}

fn session(task: &Task, trustee: u64) -> CompletedDelegation<u64> {
    let scratch: TrustStore<u64> = TrustStore::new();
    DelegationRequest::new(trustee, task, Goal::ANY, Context::amicable(task.id()))
        .committed()
        .activate(&scratch)
        .finish(DelegationOutcome::succeeded(competence(trustee), 0.1))
        .expect("outcome is unit-range")
}

fn main() {
    let task = Task::uniform(TaskId(0), [CharacteristicId(0)]).expect("non-empty task");
    let root = std::env::temp_dir().join(format!("siot-fleet-failover-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&root);
    let node_dir = |node: usize| root.join(format!("node-{node:03}"));

    // ---- the fleet: two durable nodes behind TCP ------------------------
    let services: Vec<_> = (0..NODES).map(|n| spawn_node(&node_dir(n), &task)).collect();
    let mut servers: Vec<_> = services
        .iter()
        .map(|s| RemoteTrustServer::bind("127.0.0.1:0", s.handle()).expect("loopback port"))
        .collect();
    let addrs: Vec<String> = servers.iter().map(|s| s.local_addr().to_string()).collect();
    println!("fleet of {NODES} durable {SHARDS}-shard nodes on {addrs:?}");

    let fleet = FleetTrustHandle::<u64>::connect_opts(
        addrs,
        FleetOptions {
            request_deadline: Duration::from_secs(30),
            backoff_base: Duration::from_millis(5),
            backoff_cap: Duration::from_millis(100),
            ..FleetOptions::default()
        },
    )
    .expect("at least one node reachable");

    // ---- the workload, with a mid-stream node kill ----------------------
    // every batch is stamped with (session, seq) idempotency tags at
    // prepare time; submits pipeline eagerly like the plain remote handle
    let stamped: Vec<_> = (0..BATCHES)
        .map(|b| {
            fleet.prepare(
                (0..BATCH).map(|i| session(&task, ((b * BATCH + i) % 40) as u64)).collect(),
            )
        })
        .collect();
    let pending: Vec<_> = stamped.iter().map(|s| fleet.submit_prepared(s)).collect();

    // kill node 1 while those batches are in flight, then resurrect it on
    // a NEW port sharing the SAME dedup window — the graceful-restart
    // seam: receipts of chunks the dying transport already folded replay
    // instead of folding again
    let victim = servers.pop().expect("two servers");
    let endpoint = services[1].handle();
    let killer = {
        let fleet = fleet.clone();
        std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(3));
            let window = victim.dedup_window();
            let old = victim.local_addr();
            victim.shutdown(); // every connection dies, receipts in flight
            let reborn = RemoteTrustServer::bind_with("127.0.0.1:0", endpoint, window)
                .expect("fresh loopback port");
            fleet.replace_node(1, reborn.local_addr().to_string());
            println!("  node 1 killed on {old}, reborn on {}", reborn.local_addr());
            reborn
        })
    };

    let mut committed = 0usize;
    for p in pending {
        committed += block_on(p).expect("tagged batches retry across the restart").len();
    }
    let reborn = killer.join().expect("killer thread");
    println!("  {committed} commits acked exactly once across the kill");

    // ---- graceful degradation while a node is down ----------------------
    // take node 1 down again — and leave it down — to show partial answers
    reborn.shutdown();
    let cut = block_on(fleet.known_peers_cut(Freshness::Aligned)).expect("live node answers");
    println!(
        "\nwith node 1 down: aligned cut covers {} trustees, missing {:?}",
        cut.value.len(),
        cut.missing.iter().map(|(i, a)| format!("node {i} @ {a}")).collect::<Vec<_>>(),
    );
    let dead_peer = (0..40u64).find(|&p| fleet.node_of(p) == 1).expect("some peer on node 1");
    match block_on(fleet.record(dead_peer, task.id())) {
        Err(TrustError::NodeUnavailable { addr }) => {
            println!("  reading trustee {dead_peer} fails fast, typed: node unavailable at {addr}")
        }
        other => println!("  unexpected: {other:?}"),
    }
    let stats = block_on(fleet.node_stats()).expect("stats never fail");
    for (i, s) in stats.iter().enumerate() {
        match s.saturation() {
            Some(sat) => println!("  node {i} @ {}: reachable, saturation {sat:.2}", s.addr),
            None => println!("  node {i} @ {}: unreachable", s.addr),
        }
    }

    // ---- the fleet converges: exactly-once, bit-identical ----------------
    // resurrect node 1 one more time and rank the whole fleet
    let reborn =
        RemoteTrustServer::bind_with("127.0.0.1:0", services[1].handle(), DedupWindow::new())
            .expect("fresh loopback port");
    fleet.replace_node(1, reborn.local_addr().to_string());
    let records = block_on(fleet.task_records(task.id())).expect("whole fleet answers");

    // the sequential reference: the same workload folded on one engine
    let mut reference: TrustStore<u64> = TrustStore::new();
    reference.register_task(task.clone());
    reference.commit_batch(
        (0..BATCHES * BATCH).map(|i| session(&task, (i % 40) as u64)).collect::<Vec<_>>(),
        &ServiceOptions::default().betas,
    );
    assert_eq!(records.len(), reference.known_peers().len());
    for (peer, rec) in &records {
        let expect = reference.record(*peer, task.id()).expect("reference peer");
        assert_eq!(rec.interactions, expect.interactions, "trustee {peer} double-counted or lost");
        assert_eq!(rec.s_hat.to_bits(), expect.s_hat.to_bits());
    }
    let mut ranked: Vec<(u64, f64)> =
        records.iter().map(|(p, r)| (*p, r.expected_net_profit())).collect();
    ranked.sort_by(|a, b| b.1.partial_cmp(&a.1).expect("finite").then(a.0.cmp(&b.0)));
    println!("\nconverged rankings (top 5), bit-identical to the sequential fold:");
    for (peer, profit) in ranked.iter().take(5) {
        println!(
            "  trustee {peer}: expected net profit {profit:.3} (actual {:.2})",
            competence(*peer)
        );
    }

    block_on(fleet.shutdown()).expect("every node's shards drain and flush");
    reborn.shutdown();
    for server in servers {
        server.shutdown();
    }
    drop(services);
    let _ = std::fs::remove_dir_all(&root);
    println!("fleet stopped; failover lifecycle complete");
}
