//! The paper's Alice-and-Bob camera scenario (§4.1): mutuality of trustor
//! and trustee.
//!
//! Alice wants to use Bob's camera. Bob reverse-evaluates Alice from his
//! usage logs before accepting — protecting the *trustee*, which unilateral
//! trust models cannot do.
//!
//! Run with: `cargo run --example camera_sharing`

use siot::core::prelude::*;

fn main() {
    let camera_task = Task::uniform(TaskId(1), [CharacteristicId(0)]).expect("non-empty");

    // Bob's trustee-side policy: only serve trustors whose reverse
    // trustworthiness clears θ (Eq. 1)
    let bob = ReverseEvaluator::new(0.5);

    // Two candidate trustors with different histories at Bob's place.
    let mut alice_log = UsageLog::new(); // responsible neighbour
    for _ in 0..14 {
        alice_log.record_responsive();
    }
    alice_log.record_abusive(); // one slip

    let mut mallory_log = UsageLog::new(); // resold the camera feed before
    for _ in 0..6 {
        mallory_log.record_abusive();
    }
    mallory_log.record_responsive();

    println!("Bob's threshold θ = {}", bob.theta);
    for (name, log) in [("Alice", &alice_log), ("Mallory", &mallory_log)] {
        let tw = log.reverse_trustworthiness();
        println!(
            "{name}: reverse trustworthiness {tw} -> {}",
            if bob.accepts(log) { "Bob ACCEPTS the delegation" } else { "Bob REFUSES" }
        );
    }

    // Meanwhile Alice pre-evaluates Bob's camera service the usual way
    // (Eq. 18) from past delegations:
    let mut alice_store: TrustStore<u32> = TrustStore::new();
    alice_store.register_task(camera_task.clone());
    let betas = ForgettingFactors::figures();
    let bob_id = 7u32;
    for _ in 0..10 {
        alice_store.observe(
            bob_id,
            camera_task.id(),
            &Observation { success_rate: 0.92, gain: 0.85, damage: 0.05, cost: 0.2 },
            &betas,
        );
    }
    let tw =
        alice_store.trustworthiness(bob_id, camera_task.id()).expect("alice has history with bob");
    println!("\nAlice's trustworthiness toward Bob's camera: {tw}");
    println!("Both sides evaluated each other — that is the mutuality of §4.1.");
}
