//! The paper's Alice-and-Bob camera scenario (§4.1): mutuality of trustor
//! and trustee.
//!
//! Alice wants to use Bob's camera. Bob reverse-evaluates Alice from his
//! usage logs before accepting — protecting the *trustee*, which unilateral
//! trust models cannot do. Alice's side of the relationship runs through
//! delegation sessions, so her records and her usage log about Bob grow
//! together, one executed session at a time.
//!
//! Run with: `cargo run --example camera_sharing`

use siot::core::prelude::*;

fn main() {
    let camera_task = Task::uniform(TaskId(1), [CharacteristicId(0)]).expect("non-empty");

    // Bob's trustee-side policy: only serve trustors whose reverse
    // trustworthiness clears θ (Eq. 1)
    let bob = ReverseEvaluator::new(0.5);

    // Two candidate trustors with different histories at Bob's place.
    let mut alice_log = UsageLog::new(); // responsible neighbour
    for _ in 0..14 {
        alice_log.record_responsive();
    }
    alice_log.record_abusive(); // one slip

    let mut mallory_log = UsageLog::new(); // resold the camera feed before
    for _ in 0..6 {
        mallory_log.record_abusive();
    }
    mallory_log.record_responsive();

    println!("Bob's threshold θ = {}", bob.theta);
    for (name, log) in [("Alice", &alice_log), ("Mallory", &mallory_log)] {
        let tw = log.reverse_trustworthiness();
        println!(
            "{name}: reverse trustworthiness {tw} -> {}",
            if bob.accepts(log) { "Bob ACCEPTS the delegation" } else { "Bob REFUSES" }
        );
    }

    // Meanwhile Alice runs the full trust process toward Bob's camera:
    // delegate → evaluate → decide → execute, ten sessions in a row.
    let mut alice: TrustStore<u32> = TrustStore::new();
    alice.register_task(camera_task.clone());
    let goal = Goal { min_success: 0.5, min_gain: 0.3, max_damage: 0.3, max_cost: 0.4 };
    let betas = ForgettingFactors::figures();
    let bob_id = 7u32;
    for _ in 0..10 {
        let session = alice
            .delegate(bob_id, &camera_task, goal, Context::amicable(camera_task.id()))
            // first contact: explore under an optimistic prior (§5.7)
            .with_prior(TrustRecord::with_priors(1.0, 1.0, 0.0, 0.0))
            .evaluate(&alice);
        let Decision::Delegate(active) = session.into_decision() else {
            unreachable!("Bob's camera stays within Alice's goal")
        };
        let outcome = DelegationOutcome::observed(Observation {
            success_rate: 0.92,
            gain: 0.85,
            damage: 0.05,
            cost: 0.2,
        });
        let receipt = active.execute(&mut alice, outcome, &betas).expect("unit-range");
        assert!(receipt.fulfilled, "the camera delivered inside the goal box");
    }
    let tw = alice.trustworthiness(bob_id, camera_task.id()).expect("alice has history with bob");
    println!("\nAlice's trustworthiness toward Bob's camera: {tw}");
    println!(
        "Alice's log about Bob: {} responsive uses out of {}",
        alice.usage_log(bob_id).responsive,
        alice.usage_log(bob_id).total()
    );
    println!("Both sides evaluated each other — that is the mutuality of §4.1.");
}
