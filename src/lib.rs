//! # siot — Clarified trust for the Social Internet of Things
//!
//! Facade crate re-exporting the whole workspace: the trust model
//! ([`core`]), the social-network substrate ([`graph`]), the delegation
//! simulation engine ([`sim`]) and the discrete-event IoT testbed
//! ([`iot`]).
//!
//! This workspace reproduces *Lin & Dong, "Clarifying Trust in Social
//! Internet of Things"* (TKDE / ICDE'18). Start with
//! `examples/quickstart.rs`, or regenerate the paper's evaluation with
//! `cargo run -p siot-bench --bin all`.
//!
//! ```
//! use siot::core::prelude::*;
//! use siot::graph::generate::social::SocialNetKind;
//!
//! // one of the paper's evaluation networks…
//! let g = SocialNetKind::Twitter.generate(42);
//! assert_eq!(g.node_count(), 244);
//!
//! // …and the trust *process* running over it: one delegation session,
//! // evaluate → decide → execute, feedback folded exactly once
//! let mut engine: TrustStore<siot::sim::AgentId> = TrustStore::new();
//! let task = Task::uniform(TaskId(0), [CharacteristicId(0)]).unwrap();
//! engine.register_task(task.clone());
//! let peer = siot::sim::AgentId::from(7u32);
//! let session = engine
//!     .delegate(peer, &task, Goal::profitable(), Context::amicable(task.id()))
//!     .with_prior(TrustRecord::with_priors(1.0, 1.0, 0.0, 0.0))
//!     .evaluate(&engine);
//! let Decision::Delegate(active) = session.into_decision() else { unreachable!() };
//! active
//!     .execute(&mut engine, DelegationOutcome::succeeded(0.9, 0.1),
//!              &ForgettingFactors::figures())
//!     .unwrap();
//! assert!(engine.trustworthiness(peer, task.id()).unwrap().value() > 0.6);
//! ```

//! # Quickstart
//!
//! The walkthrough below is [`examples/quickstart.rs`] verbatim — run it
//! with `cargo run --example quickstart`. It exercises all six ingredients
//! of the trust process on a small-world network.
//!
//! [`examples/quickstart.rs`]: https://example.invalid/siot/examples/quickstart.rs
#![doc = "```no_run"]
#![doc = include_str!("../examples/quickstart.rs")]
#![doc = "```"]
#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub use siot_core as core;
pub use siot_graph as graph;
pub use siot_iot as iot;
pub use siot_sim as sim;
