//! Integration of the discrete-event testbed: association, the delegation
//! protocol over real frames, and radio/energy accounting.

use siot::core::prelude::*;
use siot::iot::app::{CoordinatorApp, TrusteeBehavior, TrustorApp, TrustorConfig};
use siot::iot::experiment::{build, GroupSetup};
use siot::iot::{DeviceId, SimTime};

fn one_task() -> Task {
    Task::uniform(TaskId(0), [CharacteristicId(0)]).unwrap()
}

#[test]
fn network_forms_and_runs_delegations() {
    let task = one_task();
    let tasks = vec![task.clone(); 5];
    let built = build(
        3,
        GroupSetup::default(),
        &TrusteeBehavior::honest(0.8),
        &TrusteeBehavior::honest(0.6),
        &[task],
        |trustees| {
            let mut c = TrustorConfig::new(trustees, DeviceId(0));
            c.tasks = tasks.clone();
            c.round_interval = SimTime::secs(2);
            c
        },
    );
    let mut net = built.net;
    net.start();
    net.run_to_idle();

    // every device associated with the coordinator
    let coord: &CoordinatorApp = net.app_as(built.coordinator).unwrap();
    assert_eq!(coord.joined.len(), 30, "all 30 node devices joined");

    // every trustor completed its 5 rounds, mostly successfully
    for &t in &built.trustors {
        let app: &TrustorApp = net.app_as(t).unwrap();
        assert_eq!(app.logs.len(), 5, "all rounds logged for {t}");
        let completed = app.logs.iter().filter(|l| l.quality.is_some()).count();
        assert!(completed >= 4, "{t} completed {completed}/5");
    }

    // reports reached the coordinator over the air
    assert!(coord.reports.len() >= 40, "got {} reports", coord.reports.len());

    // radio accounting is consistent: time moved, energy was spent
    assert!(net.now() > SimTime::secs(8));
    for d in net.devices() {
        if d.id != built.coordinator {
            assert!(d.stats.frames_sent > 0, "{} sent nothing", d.id);
            assert!(d.stats.energy_uj > 0.0);
        }
    }
}

#[test]
fn trust_records_form_from_over_the_air_outcomes() {
    let task = one_task();
    let tasks = vec![task.clone(); 8];
    let built = build(
        9,
        GroupSetup { groups: 2, ..GroupSetup::default() },
        &TrusteeBehavior::honest(0.9),
        &TrusteeBehavior::honest(0.2),
        std::slice::from_ref(&task),
        |trustees| {
            let mut c = TrustorConfig::new(trustees, DeviceId(0));
            c.tasks = tasks.clone();
            c.round_interval = SimTime::secs(2);
            c
        },
    );
    let mut net = built.net;
    net.start();
    net.run_to_idle();

    // after 8 rounds, each trustor holds records whose quality ordering
    // matches the trustees' actual behaviour
    for &t in &built.trustors {
        let app: &TrustorApp = net.app_as(t).unwrap();
        let best_good = built
            .honest
            .iter()
            .filter_map(|&h| app.engine.record(h, task.id()))
            .map(|r| r.s_hat)
            .fold(f64::NEG_INFINITY, f64::max);
        if best_good.is_finite() {
            assert!(best_good > 0.6, "honest trustees look good: {best_good}");
        }
    }
}

#[test]
fn battery_powered_trustees_withdraw_when_depleted() {
    use siot::iot::app::TrusteeApp;
    let task = one_task();
    let tasks = vec![task.clone(); 12];
    // a tiny budget: a few frames' worth of energy
    let built = build(
        5,
        GroupSetup { groups: 1, ..GroupSetup::default() },
        &TrusteeBehavior::battery_powered(0.9, 800.0),
        &TrusteeBehavior::honest(0.3),
        std::slice::from_ref(&task),
        |trustees| {
            let mut c = TrustorConfig::new(trustees, DeviceId(0));
            c.tasks = tasks.clone();
            c.round_interval = SimTime::secs(2);
            c
        },
    );
    let mut net = built.net;
    net.start();
    net.run_to_idle();

    // the battery trustees served early rounds, then declined
    let mut total_declined = 0;
    for &h in &built.honest {
        let app: &TrusteeApp = net.app_as(h).unwrap();
        total_declined += app.declined;
        // withdrawal caps *serving* spend; passive listening (task
        // requests keep arriving every round) still costs rx energy
        assert!(
            net.device(h).stats.energy_uj < 4_000.0,
            "withdrawal caps energy spend: {}",
            net.device(h).stats.energy_uj
        );
    }
    assert!(total_declined > 0, "depleted trustees must decline requests");

    // delegations continued: the mains-powered (low-quality) trustees
    // picked up the load in later rounds
    for &t in &built.trustors {
        let app: &TrustorApp = net.app_as(t).unwrap();
        let late_selected = app
            .logs
            .iter()
            .filter(|l| l.round >= 8)
            .filter_map(|l| l.selected)
            .filter(|s| built.dishonest.contains(s))
            .count();
        assert!(late_selected > 0, "{t} must fall back to the remaining trustees");
    }
}
