//! End-to-end test of the six-ingredient trust process on the core model:
//! trustor, trustee, goal, evaluation, decision/action/result, context —
//! expressed through the typed-state delegation session.

use siot::core::environment::EnvIndicator;
use siot::core::prelude::*;

const SENSE: CharacteristicId = CharacteristicId(0);
const STORE: CharacteristicId = CharacteristicId(1);

#[test]
fn full_trust_lifecycle() {
    // trustor X with a goal: sense-and-store, under a degraded environment
    let sense_task = Task::uniform(TaskId(0), [SENSE]).unwrap();
    let store_task = Task::uniform(TaskId(1), [STORE]).unwrap();
    let goal_task = Task::uniform(TaskId(2), [SENSE, STORE]).unwrap();
    // the success bar sits between the two candidates' inferred
    // trustworthiness (~0.92 vs ~0.65), so the decision separates them
    let goal = Goal { min_success: 0.8, min_gain: 0.3, max_damage: 0.5, max_cost: 0.5 };
    let context = Context::new(goal_task.id(), EnvIndicator::new(0.5).unwrap());

    let mut engine: TrustStore<u32> = TrustStore::new();
    engine.register_task(sense_task.clone());
    engine.register_task(store_task.clone());
    engine.register_task(goal_task.clone());

    let betas = ForgettingFactors::figures();
    let (good_peer, bad_peer) = (1u32, 2u32);

    // history built through executed sessions: good_peer did both subtasks
    // well, bad_peer failed storage
    for _ in 0..20 {
        for (peer, sub, outcome) in [
            (good_peer, &sense_task, DelegationOutcome::succeeded(0.9, 0.1)),
            (good_peer, &store_task, DelegationOutcome::succeeded(0.8, 0.1)),
            (bad_peer, &sense_task, DelegationOutcome::succeeded(0.9, 0.1)),
            (bad_peer, &store_task, DelegationOutcome::failed(0.8, 0.1)),
        ] {
            engine
                .delegate(peer, sub, Goal::ANY, Context::amicable(sub.id()))
                .activate(&engine)
                .execute(&mut engine, outcome, &betas)
                .unwrap();
        }
    }
    // the sessions kept the mutuality ledger: every interaction counted once
    assert_eq!(engine.usage_log(good_peer).total(), 40);
    assert_eq!(engine.usage_log(bad_peer).total(), 40);

    // pre-evaluation for the never-delegated goal task resolves through
    // Eq. 4 inference inside the session
    let eval_good = engine.delegate(good_peer, &goal_task, goal, context).evaluate(&engine);
    assert_eq!(eval_good.basis(), EvaluationBasis::Inferred);
    let tw_good = eval_good.trustworthiness().value();
    let eval_bad = engine.delegate(bad_peer, &goal_task, goal, context).evaluate(&engine);
    let tw_bad = eval_bad.trustworthiness().value();
    assert!(tw_good > tw_bad + 0.15, "inference must separate: {tw_good} vs {tw_bad}");
    assert!(tw_good > 0.6);

    // decision: the good candidate clears the goal, the bad one is refused
    assert!(eval_good.would_delegate());
    let Decision::Delegate(active) = eval_good.into_decision() else { unreachable!() };
    match eval_bad.into_decision() {
        Decision::Decline { reason, .. } => assert_eq!(reason, DeclineReason::GoalMisaligned),
        Decision::Delegate(_) => panic!("the failing candidate must be declined"),
    }

    // action + result in the hostile context: observed success degraded by
    // E = 0.5; executing the session removes the influence (Eqs. 25–29)
    // before the post-evaluation fold
    let observed = Observation {
        success_rate: 0.85 * context.environment.value(),
        gain: 0.8,
        damage: 0.1,
        cost: 0.2,
    };
    let receipt =
        active.execute(&mut engine, DelegationOutcome::observed(observed), &betas).unwrap();

    // post-evaluation: the environment influence was removed, so the new
    // record reflects competence, not weather
    let rec = engine.record(good_peer, goal_task.id()).unwrap();
    assert!((rec.s_hat - 0.85).abs() < 0.05, "env-corrected: {}", rec.s_hat);
    assert_eq!(receipt.record, rec);
    assert_eq!(engine.usage_log(good_peer).total(), 41, "the goal delegation counted once");

    // the trustee side protected itself too (mutuality)
    let evaluator = ReverseEvaluator::new(0.4);
    let mut log = UsageLog::new();
    for _ in 0..10 {
        log.record_responsive();
    }
    assert!(evaluator.accepts(&log));
}

#[test]
fn declined_sessions_leave_no_trace() {
    let engine: TrustStore<u32> = TrustStore::new();
    let task = Task::uniform(TaskId(0), [SENSE]).unwrap();
    // a stranger with no prior: the process stops at the decision — there
    // is no handle to feed an outcome through, so no state can move
    let session = engine
        .delegate(9, &task, Goal::profitable(), Context::amicable(task.id()))
        .evaluate(&engine);
    match session.into_decision() {
        Decision::Decline { reason, .. } => {
            assert_eq!(reason, DeclineReason::NoTrustInformation);
        }
        Decision::Delegate(_) => panic!("strangers without priors are declined"),
    }
    assert_eq!(engine.record_count(), 0);
    assert_eq!(engine.usage_log(9).total(), 0);
}

#[test]
fn self_delegation_decision() {
    // even a capable trustor delegates when the trustee nets more (Eq. 24)
    let to_self = TrustRecord::with_priors(1.0, 0.5, 0.0, 0.4);
    let to_peer = TrustRecord::with_priors(0.9, 0.8, 0.1, 0.1);
    assert!(prefers_delegation(&to_peer, &to_self));

    let lazy_peer = TrustRecord::with_priors(0.3, 0.5, 0.6, 0.3);
    assert!(!prefers_delegation(&lazy_peer, &to_self));
}
