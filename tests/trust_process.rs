//! End-to-end test of the six-ingredient trust process on the core model:
//! trustor, trustee, goal, evaluation, decision/action/result, context.

use siot::core::environment::EnvIndicator;
use siot::core::prelude::*;

const SENSE: CharacteristicId = CharacteristicId(0);
const STORE: CharacteristicId = CharacteristicId(1);

#[test]
fn full_trust_lifecycle() {
    // trustor X with a goal: sense-and-store, under a degraded environment
    let sense_task = Task::uniform(TaskId(0), [SENSE]).unwrap();
    let store_task = Task::uniform(TaskId(1), [STORE]).unwrap();
    let goal_task = Task::uniform(TaskId(2), [SENSE, STORE]).unwrap();
    let context = Context::new(goal_task.id(), EnvIndicator::new(0.5).unwrap());

    let mut store: TrustStore<u32> = TrustStore::new();
    store.register_task(sense_task);
    store.register_task(store_task);
    store.register_task(goal_task.clone());

    let betas = ForgettingFactors::figures();
    let (good_peer, bad_peer) = (1u32, 2u32);

    // history: good_peer did both subtasks well, bad_peer failed storage
    for _ in 0..20 {
        store.observe(good_peer, TaskId(0), &Observation::success(0.9, 0.1), &betas);
        store.observe(good_peer, TaskId(1), &Observation::success(0.8, 0.1), &betas);
        store.observe(bad_peer, TaskId(0), &Observation::success(0.9, 0.1), &betas);
        store.observe(bad_peer, TaskId(1), &Observation::failure(0.8, 0.1), &betas);
    }

    // pre-evaluation via inference for the never-delegated goal task
    let tw_good = store.infer(good_peer, &goal_task).unwrap();
    let tw_bad = store.infer(bad_peer, &goal_task).unwrap();
    assert!(tw_good > tw_bad + 0.15, "inference must separate: {tw_good} vs {tw_bad}");

    // decision: delegate to the better candidate (Eq. 23 on virtual records)
    assert!(tw_good > 0.6);

    // action + result in the hostile context: observed success degraded by E
    let observed = Observation {
        success_rate: 0.85 * context.environment.value(),
        gain: 0.8,
        damage: 0.1,
        cost: 0.2,
    };
    store.observe_with_environment(
        good_peer,
        goal_task.id(),
        &observed,
        &[context.environment],
        &betas,
    );

    // post-evaluation: the environment influence was removed, so the new
    // record reflects competence, not weather
    let rec = store.record(good_peer, goal_task.id()).unwrap();
    assert!((rec.s_hat - 0.85).abs() < 0.05, "env-corrected: {}", rec.s_hat);

    // the trustee side protected itself too (mutuality)
    let evaluator = ReverseEvaluator::new(0.4);
    let mut log = UsageLog::new();
    for _ in 0..10 {
        log.record_responsive();
    }
    assert!(evaluator.accepts(&log));
}

#[test]
fn self_delegation_decision() {
    // even a capable trustor delegates when the trustee nets more (Eq. 24)
    let to_self = TrustRecord::with_priors(1.0, 0.5, 0.0, 0.4);
    let to_peer = TrustRecord::with_priors(0.9, 0.8, 0.1, 0.1);
    assert!(prefers_delegation(&to_peer, &to_self));

    let lazy_peer = TrustRecord::with_priors(0.3, 0.5, 0.6, 0.3);
    assert!(!prefers_delegation(&lazy_peer, &to_self));
}
