//! Shape checks for every reproduced table and figure: the paper's
//! qualitative claims must hold (who wins, in which direction, roughly by
//! how much). Reduced sizes keep the suite fast; the full-size runs live
//! in `cargo run -p siot-bench --bin all`.

use siot::graph::generate::social::SocialNetKind;
use siot::graph::metrics::ConnectivityStats;
use siot::iot::experiment::{fragments, inference, light};
use siot::sim::scenario::{environment, mutuality, profit};
use siot_bench::paper::{TABLE1, TABLE2};
use siot_bench::runner;

fn mean(xs: &[f64]) -> f64 {
    xs.iter().sum::<f64>() / xs.len() as f64
}

// ---- Table 1 ---------------------------------------------------------

#[test]
fn table1_statistics_close_to_paper() {
    for (kind, paper) in SocialNetKind::ALL.iter().zip(&TABLE1) {
        let g = kind.generate(42);
        let s = ConnectivityStats::compute(&g, 42);
        assert_eq!(s.nodes, paper.nodes, "{}", paper.name);
        assert_eq!(s.edges, paper.edges, "{}", paper.name);
        assert!((s.average_degree - paper.average_degree).abs() < 0.01);
        assert!(
            (s.diameter as i64 - paper.diameter as i64).abs() <= 3,
            "{}: diameter {} vs {}",
            paper.name,
            s.diameter,
            paper.diameter
        );
        assert!(
            (s.average_path_length - paper.average_path_length).abs() < 1.0,
            "{}: apl {} vs {}",
            paper.name,
            s.average_path_length,
            paper.average_path_length
        );
        assert!(
            (s.average_clustering - paper.average_clustering).abs() < 0.08,
            "{}: cc {} vs {}",
            paper.name,
            s.average_clustering,
            paper.average_clustering
        );
        assert!(
            (s.modularity - paper.modularity).abs() < 0.1,
            "{}: Q {} vs {}",
            paper.name,
            s.modularity,
            paper.modularity
        );
        assert!(
            (s.communities as i64 - paper.communities as i64).abs() <= 4,
            "{}: communities {} vs {}",
            paper.name,
            s.communities,
            paper.communities
        );
    }
}

// ---- Fig. 7 ----------------------------------------------------------

#[test]
fn fig7_theta_tradeoff() {
    for kind in SocialNetKind::ALL {
        let g = kind.generate(42);
        let run = |theta| {
            mutuality::run(
                &g,
                &mutuality::MutualityConfig {
                    theta,
                    requests_per_trustor: 5,
                    ..Default::default()
                },
            )
        };
        let t0 = run(0.0);
        let t3 = run(0.3);
        let t6 = run(0.6);
        assert!(t0.abuse_rate > 0.4, "{}: unilateral abuse > 0.4: {t0:?}", kind.name());
        assert!(t3.abuse_rate < t0.abuse_rate, "{}", kind.name());
        assert!(t6.abuse_rate < t3.abuse_rate, "{}", kind.name());
        assert!(t3.unavailable_rate > t0.unavailable_rate, "{}", kind.name());
        assert!(t6.unavailable_rate > t3.unavailable_rate, "{}", kind.name());
    }
}

// ---- Fig. 8 ----------------------------------------------------------

#[test]
fn fig8_inference_dominates() {
    let out = inference::run(&inference::InferenceConfig { runs: 15, seed: 42 });
    assert!(mean(&out.with_model) > 85.0, "with: {:?}", out.with_model);
    let wo = mean(&out.without_model);
    assert!((25.0..=75.0).contains(&wo), "without ≈ coin flip: {wo}");
}

// ---- Figs. 9–11 ------------------------------------------------------

#[test]
fn figs9_to_11_method_ordering_and_trend() {
    let cells = runner::transitivity_sweep(42);
    use siot::sim::SearchMethod::*;
    for kind in SocialNetKind::ALL {
        let get = |method, n| {
            &cells
                .iter()
                .find(|c| c.kind == kind && c.method == method && c.n_characteristics == n)
                .expect("cell present")
                .outcome
        };
        for n in [4, 5, 6, 7] {
            let (t, c, a) = (get(Traditional, n), get(Conservative, n), get(Aggressive, n));
            assert!(c.success_rate > t.success_rate, "{} n={n}", kind.name());
            assert!(a.success_rate >= c.success_rate - 0.05, "{} n={n}", kind.name());
            assert!(c.unavailable_rate < t.unavailable_rate, "{} n={n}", kind.name());
            assert!(a.unavailable_rate <= c.unavailable_rate + 0.02, "{} n={n}", kind.name());
            assert!(a.avg_potential_trustees >= c.avg_potential_trustees, "{} n={n}", kind.name());
            assert!(c.avg_potential_trustees > t.avg_potential_trustees, "{} n={n}", kind.name());
        }
        // the paper's headline gaps (>0.2 success / >0.3 unavailable for
        // aggressive vs traditional) come out smaller here because the
        // satellite-heavy synthetic networks starve every method on
        // peripheral trustors (see EXPERIMENTS.md); direction and growth
        // with the alphabet still hold clearly
        let (t4, a4) = (get(Traditional, 4), get(Aggressive, 4));
        assert!(a4.success_rate - t4.success_rate > 0.1, "{}", kind.name());
        assert!(t4.unavailable_rate - a4.unavailable_rate > 0.05, "{}", kind.name());
        let (t7x, a7x) = (get(Traditional, 7), get(Aggressive, 7));
        assert!(
            t7x.unavailable_rate - a7x.unavailable_rate > 0.07,
            "{}: gap must widen with more characteristics",
            kind.name()
        );
        // trends across the sweep: harder with more characteristics
        let (t7, a7) = (get(Traditional, 7), get(Aggressive, 7));
        assert!(t7.success_rate < t4.success_rate + 0.03, "{}", kind.name());
        assert!(a7.success_rate < a4.success_rate + 0.03, "{}", kind.name());
        assert!(t7.unavailable_rate > t4.unavailable_rate - 0.03, "{}", kind.name());
    }
}

// ---- Table 2 / Fig. 12 -----------------------------------------------

#[test]
fn table2_and_fig12_orderings() {
    let results = runner::feature_transitivity(42);
    use siot::sim::SearchMethod::*;
    for kind in SocialNetKind::ALL {
        let get = |m| {
            results
                .iter()
                .find(|(k, mm, _)| *k == kind && *mm == m)
                .map(|(_, _, o)| o)
                .expect("present")
        };
        let (t, c, a) = (get(Traditional), get(Conservative), get(Aggressive));
        assert!(t.success_rate < c.success_rate, "{}", kind.name());
        assert!(c.success_rate < a.success_rate + 0.02, "{}", kind.name());
        assert!(t.unavailable_rate > c.unavailable_rate, "{}", kind.name());
        assert!(c.unavailable_rate > a.unavailable_rate - 0.02, "{}", kind.name());
        assert!(t.avg_potential_trustees < a.avg_potential_trustees, "{}", kind.name());
        // paper's reference values satisfy the same ordering
        assert!(TABLE2[0].success[0] < TABLE2[2].success[0]);
    }
    // Fig. 12: inquiry overhead ordering on Facebook
    let inquired = |m| {
        let (_, _, o) = results
            .iter()
            .find(|(k, mm, _)| *k == SocialNetKind::Facebook && *mm == m)
            .expect("present");
        mean(&o.inquired_per_trustor.iter().map(|&x| x as f64).collect::<Vec<_>>())
    };
    let (ti, ci, ai) = (inquired(Traditional), inquired(Conservative), inquired(Aggressive));
    assert!(ai > ci * 1.5, "aggressive pays a clear overhead: {ai} vs {ci}");
    assert!(ci >= ti * 0.8, "conservative comparable or above traditional: {ci} vs {ti}");
}

// ---- Fig. 13 ----------------------------------------------------------

#[test]
fn fig13_second_strategy_wins() {
    for kind in SocialNetKind::ALL {
        let g = kind.generate(42);
        let cfg = profit::ProfitConfig { iterations: 1500, ..Default::default() };
        let s1 = profit::run(&g, profit::Strategy::SuccessRateOnly, &cfg);
        let s2 = profit::run(&g, profit::Strategy::NetProfit, &cfg);
        let tail = |v: &[f64]| mean(&v[v.len() - 200..]);
        // The winning margin is strongly seed-dependent (0.13–0.97 across
        // seeds/networks with the vendored RNG); the paper's claim is the
        // ordering plus a clear gap, not a specific magnitude.
        assert!(tail(&s2) > tail(&s1) + 0.1, "{}: {} vs {}", kind.name(), tail(&s2), tail(&s1));
        assert!(tail(&s2) > 0.2, "{}: second strategy profitable", kind.name());
        // convergence: profit improves from the start
        assert!(tail(&s2) > mean(&s2[..50]), "{}", kind.name());
    }
}

// ---- Fig. 14 ----------------------------------------------------------

#[test]
fn fig14_cost_factor_detects_fragment_attack() {
    let out = fragments::run(&fragments::FragmentsConfig { rounds: 30, ..Default::default() });
    let late = |v: &[f64]| mean(&v[20..]);
    assert!(late(&out.with_model) < 250.0, "attackers dropped: {:?}", &out.with_model[20..]);
    assert!(late(&out.without_model) > 450.0, "gain-only keeps paying");
}

// ---- Fig. 15 ----------------------------------------------------------

#[test]
fn fig15_tracking_under_dynamic_environment() {
    let out = environment::run(&environment::EnvironmentConfig { runs: 50, ..Default::default() });
    use siot::sim::scenario::environment::window_mean;
    assert!((window_mean(&out.ideal, 60, 100) - 0.8).abs() < 0.05);
    assert!((window_mean(&out.traditional, 170, 200) - 0.32).abs() < 0.07);
    assert!((window_mean(&out.traditional, 270, 300) - 0.56).abs() < 0.07);
    for (lo, hi) in [(60, 100), (160, 200), (260, 300)] {
        assert!((window_mean(&out.proposed, lo, hi) - 0.8).abs() < 0.07);
    }
}

// ---- Fig. 16 ----------------------------------------------------------

#[test]
fn fig16_environment_model_recovers_after_dark() {
    let out = light::run(&light::LightConfig {
        rounds: 30,
        dark_from: 10,
        light_again_from: 20,
        ..Default::default()
    });
    assert!(mean(&out.with_model[2..10]) > 400.0, "first light period profitable");
    assert!(mean(&out.with_model[12..20]) < 300.0, "dark hurts");
    let with_rec = mean(&out.with_model[24..]);
    let without_rec = mean(&out.without_model[24..]);
    assert!(with_rec > 400.0, "proposed recovers: {with_rec}");
    assert!(with_rec > without_rec + 50.0, "{with_rec} vs {without_rec}");
}
