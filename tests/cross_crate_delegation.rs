//! Integration across siot-graph, siot-core and siot-sim: delegation on a
//! generated social network.

use siot::graph::generate::social::SocialNetKind;
use siot::graph::traversal::connected_components;
use siot::sim::scenario::transitivity::{run, TransitivityConfig};
use siot::sim::Roles;
use siot::sim::SearchMethod;

#[test]
fn evaluation_networks_support_delegation() {
    for kind in SocialNetKind::ALL {
        let g = kind.generate(11);
        let (_, comps) = connected_components(&g);
        assert_eq!(comps, 1, "{} connected", kind.name());

        let roles = Roles::paper_split(&g, 11);
        assert!(roles.trustors().len() >= g.node_count() * 38 / 100);
        assert!(roles.trustees().len() >= g.node_count() * 38 / 100);

        let cfg = TransitivityConfig {
            n_characteristics: 5,
            requests_per_trustor: 2,
            seed: 11,
            ..Default::default()
        };
        let out = run(&g, SearchMethod::Aggressive, &cfg);
        assert!(out.success_rate > 0.3, "{}: {out:?}", kind.name());
        assert!(out.unavailable_rate < 0.6, "{}: {out:?}", kind.name());
        assert_eq!(out.inquired_per_trustor.len(), roles.trustors().len());
    }
}

#[test]
fn methods_rank_consistently_across_networks() {
    for kind in SocialNetKind::ALL {
        let g = kind.generate(23);
        let cfg = TransitivityConfig {
            n_characteristics: 5,
            requests_per_trustor: 3,
            seed: 23,
            ..Default::default()
        };
        let trad = run(&g, SearchMethod::Traditional, &cfg);
        let aggr = run(&g, SearchMethod::Aggressive, &cfg);
        assert!(
            aggr.success_rate > trad.success_rate,
            "{}: aggressive must beat traditional ({} vs {})",
            kind.name(),
            aggr.success_rate,
            trad.success_rate
        );
        assert!(
            aggr.avg_potential_trustees > trad.avg_potential_trustees,
            "{}: more trustees under aggressive",
            kind.name()
        );
    }
}
